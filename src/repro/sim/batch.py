"""Batched lockstep fleet engine: whole fleets as numpy device-arrays.

:class:`BatchedFleetEngine` simulates N single-cycle, profile-mode devices
of a fleet *inside one process*, holding every piece of mutable per-device
state as a numpy column — storage level / capacity / ledger totals,
``busy_until``, the charge bookkeeping (``t_charged`` / ``cum_charged``),
and per-device event counts — and advancing all still-active devices one
event-index step at a time.  Decision-independent quantities are
precomputed per device up front exactly as :class:`~repro.sim.simulator.
Simulator` does (cumulative harvested energy at event times via
``PowerTrace._cum_bulk``, windowed observed charge power via
``PowerTrace.mean_power``); the inner step then applies controller
decisions across the device axis with fancy indexing through the batched
controller groups of :mod:`repro.runtime.batched`.

Determinism contract
--------------------
The engine is **bit-identical** to the per-device path
(:func:`repro.fleet.runner.run_device` looped over the same devices), and
``tests/golden/`` enforces it:

* every device's random streams stay pinned to
  ``SeedSequence(fleet_seed, spawn_key=(device_index,))`` — the same four
  child seeds (trace, events, simulator, controller) the per-device worker
  derives;
* pooled variates are consumed through :class:`~repro.utils.rng.DrawBatch`
  — per-device 256-wide pools refilled with the exact sampler calls
  :class:`~repro.utils.rng.PooledDraws` makes, in each device's own call
  order (difficulty before entropy, exploration before action), so the
  realized per-device streams are the scalar ones;
* all ledger arithmetic (charge / leak / draw, the 1e-12 affordability
  epsilon, the max() guard on cumulative-energy crossings) replicates the
  scalar operation sequence elementwise — float64 lanes round identically
  to the scalar ops they shadow.

Because devices never interact, lockstep order across devices is free;
only the within-device order matters, and the step loop preserves it.

Eligibility: the lockstep form covers profile-mode single-cycle execution
with batchable controllers (no learned continue rule).  Dataset mode (per
-event forward passes through a live network), intermittent execution
(the SONIC baseline's multi-cycle engine), and csv traces (file-backed,
deliberately uncached) fall back to the per-device path — see
:func:`batch_eligible` and the ``engine`` knob on
:class:`~repro.fleet.runner.FleetRunner`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.runtime.batched import batch_controllers, batchable
from repro.runtime.controller import CONTROLLER_KINDS
from repro.runtime.state import RuntimeStateBatch
from repro.sim.results import RecordColumns, SimulationResult, percentile_dict
from repro.utils.rng import DrawBatch, as_generator

#: miss_reason codes used in the packed record buffers.
_REASONS = ("", "busy", "energy")
_MISS_NONE, _MISS_BUSY, _MISS_ENERGY = 0, 1, 2


def batch_eligible(spec) -> bool:
    """Can this :class:`~repro.fleet.spec.DeviceSpec` run under lockstep?

    Mirrors the fallback list in the module docstring: single-cycle
    execution, non-csv trace, and a controller family the batched protocol
    covers with no learned continue rule.  (Duck-typed on the spec fields
    rather than importing the fleet layer — this module sits below it.)
    """
    if spec.execution != "single-cycle":
        return False
    if dict(spec.trace).get("family") == "csv":
        return False
    controller = dict(spec.controller)
    if controller.get("kind") not in CONTROLLER_KINDS:
        return False
    if controller.get("continue_rule") is not None:
        return False
    return True


class _Device:
    """Materialized per-device objects + precomputed event-time queries."""

    __slots__ = (
        "index", "spec", "trace", "events", "profile", "storage", "mcu",
        "controller", "sim_rng", "cum_at_event", "charge_power",
        "exit_energy", "exit_time", "exit_acc",
    )

    def __init__(self, index: int, spec: DeviceSpec, fleet_seed: int):
        # Lazy import: the fleet runner imports this module at top level,
        # so importing its builders here would be circular at import time.
        from repro.fleet.runner import (
            build_controller,
            build_events,
            build_mcu,
            build_storage,
            build_trace,
            resolve_profile,
        )

        self.index = int(index)
        self.spec = spec
        child = np.random.SeedSequence(fleet_seed, spawn_key=(int(index),))
        trace_seed, event_seed, sim_seed, ctrl_seed = (
            int(s) for s in child.generate_state(4, np.uint32)
        )
        self.trace = build_trace(spec.trace, trace_seed)
        self.events = np.asarray(
            build_events(spec.events, self.trace.duration, event_seed),
            dtype=np.float64,
        )
        if self.events.size and (
            np.any(np.diff(self.events) < 0) or self.events[0] < 0
        ):
            raise SimulationError("events must be sorted and non-negative")
        self.profile = resolve_profile(spec.profile)
        self.storage = build_storage(spec.storage)
        self.mcu = build_mcu(spec.mcu)
        self.controller = build_controller(
            spec.controller, self.profile, self.storage, ctrl_seed
        )
        self.sim_rng = as_generator(sim_seed)
        trace = self.trace
        duration = trace.duration
        if self.events.size:
            clipped = np.minimum(duration, np.maximum(0.0, self.events))
            self.cum_at_event = trace._cum_bulk(clipped)
            # mean_power inlined so its _cum_bulk(t) shares the event-time
            # evaluation above (same clipped times, same arithmetic).
            t0 = np.maximum(0.0, clipped - spec.power_window_s)
            span = clipped - t0
            degenerate = span <= 0.0
            windowed = (self.cum_at_event - trace._cum_bulk(t0)) / np.where(
                degenerate, 1.0, span
            )
            if degenerate.any():
                windowed = np.where(degenerate, trace.power(clipped), windowed)
            self.charge_power = windowed
        else:
            self.cum_at_event = np.empty(0)
            self.charge_power = np.empty(0)
        self.exit_energy = [float(e) for e in self.profile.exit_energy_mj]
        self.exit_time = [
            self.mcu.inference_time_s(f) for f in self.profile.exit_flops
        ]
        self.exit_acc = [float(a) for a in self.profile.exit_accuracies]


class BatchedFleetEngine:
    """Runs a list of eligible ``(index, DeviceSpec, fleet_seed)`` tasks.

    Construction materializes every device (traces, profiles, controllers,
    per-event precomputations); :meth:`run` plays all episodes in lockstep
    and returns one :class:`~repro.fleet.results.DeviceResult` per task,
    in task order.
    """

    def __init__(self, tasks):
        if not tasks:
            raise ConfigError("BatchedFleetEngine needs at least one device")
        for _, spec, _ in tasks:
            if not batch_eligible(spec):
                raise ConfigError(
                    f"device {spec.name!r} is not batch-eligible "
                    "(dataset/intermittent/csv or unbatchable controller)"
                )
        self.devices = [_Device(i, spec, seed) for i, spec, seed in tasks]
        for dev in self.devices:
            if not batchable(dev.controller):
                raise ConfigError(
                    f"device {dev.spec.name!r}: controller cannot be batched"
                )
        m = len(self.devices)
        self._m = m
        max_ev = max(d.events.size for d in self.devices)
        max_exits = max(d.profile.num_exits for d in self.devices)
        self._n_events = np.array([d.events.size for d in self.devices], np.int64)
        self._episodes = np.array([d.spec.episodes for d in self.devices], np.int64)
        self._n_exits = np.array(
            [d.profile.num_exits for d in self.devices], np.int64
        )
        # Padded per-event and per-exit lookups.  Cost pads with +inf so a
        # padded exit can never look affordable; accuracy/time pad with 0.
        # Per-event matrices are (event, device) so the step loop reads
        # *contiguous* rows instead of strided columns.
        self._events = np.zeros((max_ev, m))
        self._cum_at_event = np.zeros((max_ev, m))
        self._charge_power = np.zeros((max_ev, m))
        self._exit_cost = np.full((m, max_exits), np.inf)
        self._exit_time = np.zeros((m, max_exits))
        self._exit_acc = np.zeros((m, max_exits))
        for i, d in enumerate(self.devices):
            n = d.events.size
            self._events[:n, i] = d.events
            self._cum_at_event[:n, i] = d.cum_at_event
            self._charge_power[:n, i] = d.charge_power
            k = d.profile.num_exits
            self._exit_cost[i, :k] = d.exit_energy
            self._exit_time[i, :k] = d.exit_time
            self._exit_acc[i, :k] = d.exit_acc
        # Storage columns (reset per episode) + fixed environment columns.
        self._capacity = np.array([d.storage.capacity_mj for d in self.devices])
        self._efficiency = np.array([d.storage.efficiency for d in self.devices])
        self._leakage = np.array([d.storage.leakage_mw for d in self.devices])
        self._initial = np.array([d.storage._initial_mj for d in self.devices])
        self._peak = np.array(
            [float(np.max(d.trace.samples_mw)) for d in self.devices]
        )
        self._duration = np.array([d.trace.duration for d in self.devices])
        self._total_env = np.array(
            [d.trace.total_energy_mj for d in self.devices]
        )
        self._sim_draws = DrawBatch([d.sim_rng for d in self.devices])
        self._groups, self._group_of = batch_controllers(
            [d.controller for d in self.devices], self._exit_cost
        )
        # Step-loop fast-path preconditions, hoisted out of the hot loop.
        self._all_rows = np.arange(m)
        self._active = np.arange(max_ev)[:, None] < self._n_events[None, :]
        self._act_full = self._active.all(axis=1) if max_ev else np.empty(0, bool)
        self._no_leak = bool((self._leakage == 0.0).all())

    # ------------------------------------------------------------------ #
    def run(self):
        """Play every device's episodes; return DeviceResults in task order."""
        from repro.fleet.results import DeviceResult

        t0 = time.perf_counter()
        m, max_ev = self._m, self._events.shape[0]
        level = np.zeros(m)
        total_drawn = np.zeros(m)
        t_charged = np.zeros(m)
        cum_charged = np.zeros(m)
        busy_until = np.zeros(m)
        # Record buffers, reused across episodes (finished devices are
        # snapshotted by copy before the next reset).  With no learned
        # continue rule the first exit always equals the final exit and
        # "missed" is exactly "has a miss reason", so neither needs its
        # own column; the storage waste/charge ledger is likewise not
        # observable in any result and is skipped entirely.  (event,
        # device) layout like the inputs: contiguous writes per step.
        r_exit = np.empty((max_ev, m), np.int64)
        r_correct = np.empty((max_ev, m), bool)
        r_latency = np.empty((max_ev, m))
        r_energy = np.empty((max_ev, m))
        r_entropy = np.empty((max_ev, m))
        r_reason = np.empty((max_ev, m), np.int8)
        results = [None] * m
        all_rows = self._all_rows
        single = self._groups[0] if len(self._groups) == 1 else None
        no_leak = self._no_leak
        for ep in range(int(self._episodes.max())):
            part = self._episodes > ep
            part_all = bool(part.all())
            # reset_storage=True semantics at the top of every run().
            level[part] = self._initial[part]
            total_drawn[part] = 0.0
            t_charged[part] = 0.0
            cum_charged[part] = 0.0
            busy_until[part] = 0.0
            r_exit[:, part] = -1
            r_correct[:, part] = False
            r_latency[:, part] = 0.0
            r_energy[:, part] = 0.0
            r_entropy[:, part] = 1.0
            r_reason[:, part] = _MISS_NONE
            state = RuntimeStateBatch(
                time=None,
                energy_mj=level,  # aliased: only ever mutated in place
                capacity_mj=self._capacity,
                charge_power_mw=None,
                peak_power_mw=self._peak,
            )
            n_steps = int(self._n_events[part].max()) if part.any() else 0
            for j in range(n_steps):
                te = self._events[j]
                act_full_j = part_all and bool(self._act_full[j])
                act = self._active[j] if part_all else part & self._active[j]
                busy = (te < busy_until) if act_full_j else act & (te < busy_until)
                any_busy = bool(busy.any())
                if any_busy:
                    r_reason[j][busy] = _MISS_BUSY
                    proc = act & ~busy
                    if not proc.any():
                        continue
                else:
                    proc = act
                full = act_full_j and not any_busy
                # Storage charging up to the event (precomputed increment).
                cum_j = self._cum_at_event[j]
                charging = proc & (te > t_charged)
                if full and charging.all():
                    inc = np.maximum(cum_j - cum_charged, 0.0)
                    banked = inc * self._efficiency
                    stored = np.minimum(banked, self._capacity - level)
                    level += stored
                    if not no_leak:
                        lost = np.minimum(
                            level, self._leakage * (te - t_charged)
                        )
                        level -= lost
                    t_charged[:] = te
                    cum_charged[:] = cum_j
                elif charging.any():
                    inc = np.where(
                        charging, np.maximum(cum_j - cum_charged, 0.0), 0.0
                    )
                    banked = inc * self._efficiency
                    stored = np.minimum(banked, self._capacity - level)
                    level += stored
                    if not no_leak:
                        lost = np.where(
                            charging,
                            np.minimum(level, self._leakage * (te - t_charged)),
                            0.0,
                        )
                        level -= lost
                    t_charged = np.where(charging, te, t_charged)
                    cum_charged = np.where(charging, cum_j, cum_charged)
                # Controller decisions across the device axis.
                state.time = te
                state.charge_power_mw = self._charge_power[j]
                pidx = all_rows if full else np.nonzero(proc)[0]
                gids = None
                if single is not None:
                    k_sel = single.select_exit_batch(pidx, state)
                else:
                    k_sel = np.empty(len(pidx), np.int64)
                    gids = self._group_of[pidx]
                    for g, group in enumerate(self._groups):
                        sub = gids == g
                        if sub.any():
                            k_sel[sub] = group.select_exit_batch(pidx[sub], state)
                level_p = level if full else level[pidx]
                if single is not None and single.always_valid:
                    cost = self._exit_cost[pidx, k_sel]
                    afford = level_p >= cost - 1e-12
                else:
                    valid = (k_sel >= 0) & (k_sel < self._n_exits[pidx])
                    cost = self._exit_cost[pidx, np.where(valid, k_sel, 0)]
                    afford = valid & (level_p >= cost - 1e-12)
                n_afford = int(np.count_nonzero(afford))
                aff_all = n_afford == len(pidx)
                rewards = None
                if not aff_all:
                    mi = pidx[~afford]
                    r_reason[j][mi] = _MISS_ENERGY
                    busy_until[mi] = te[mi]
                    rewards = np.zeros(len(pidx))
                if n_afford:
                    if aff_all:
                        pi, kk, cost_p = pidx, k_sel, cost
                    else:
                        pi = pidx[afford]
                        kk = k_sel[afford]
                        cost_p = cost[afford]
                    busy_s = self._exit_time[pi, kk]
                    difficulty = self._sim_draws.random(pi)
                    correct = difficulty < self._exit_acc[pi, kk]
                    n_correct = int(np.count_nonzero(correct))
                    if n_correct == len(pi):
                        entropy = self._sim_draws.beta(2.0, 8.0, pi)
                    elif not n_correct:
                        entropy = self._sim_draws.beta(5.0, 3.0, pi)
                    else:
                        entropy = np.empty(len(pi))
                        entropy[correct] = self._sim_draws.beta(
                            2.0, 8.0, pi[correct]
                        )
                        wrong = ~correct
                        entropy[wrong] = self._sim_draws.beta(5.0, 3.0, pi[wrong])
                    if aff_all and full:
                        # Whole fleet processed: contiguous row writes and
                        # in-place ledger updates, no fancy indexing.
                        np.subtract(level, cost_p, out=level)
                        np.maximum(level, 0.0, out=level)
                        total_drawn += cost_p
                        r_exit[j] = kk
                        r_correct[j] = correct
                        r_latency[j] = busy_s
                        r_energy[j] = cost_p
                        r_entropy[j] = entropy
                        np.add(te, busy_s, out=busy_until)
                    else:
                        level[pi] = np.maximum(0.0, level[pi] - cost_p)
                        total_drawn[pi] += cost_p
                        r_exit[j][pi] = kk
                        r_correct[j][pi] = correct
                        r_latency[j][pi] = busy_s
                        r_energy[j][pi] = cost_p
                        r_entropy[j][pi] = entropy
                        busy_until[pi] = te[pi] + busy_s
                    if aff_all:
                        rewards = correct
                    else:
                        rewards[afford] = correct
                if single is not None:
                    if single.wants_rewards:
                        single.report_event_batch(pidx, rewards)
                else:
                    for g, group in enumerate(self._groups):
                        if not group.wants_rewards:
                            continue
                        sub = gids == g
                        if sub.any():
                            group.report_event_batch(pidx[sub], rewards[sub])
            # Trailing charge to the end of the trace, then episode close.
            tail = part & (self._duration > t_charged)
            if tail.any():
                inc = np.where(
                    tail, np.maximum(self._total_env - cum_charged, 0.0), 0.0
                )
                banked = inc * self._efficiency
                stored = np.minimum(banked, self._capacity - level)
                level += stored
                if not no_leak:
                    lost = np.where(
                        tail,
                        np.minimum(
                            level, self._leakage * (self._duration - t_charged)
                        ),
                        0.0,
                    )
                    level -= lost
            prows = all_rows[part]
            pgids = self._group_of[prows]
            for g, group in enumerate(self._groups):
                sub = prows[pgids == g]
                if len(sub):
                    group.end_episode_batch(sub)
            finishing = part & (self._episodes == ep + 1)
            for i in np.nonzero(finishing)[0].tolist():
                results[i] = self._snapshot(
                    i, total_drawn[i],
                    r_exit, r_correct, r_latency, r_energy, r_entropy, r_reason,
                )
        wall = time.perf_counter() - t0
        out = []
        grid_cache: dict = {}
        for i, d in enumerate(self.devices):
            sim_result = results[i]
            grid = grid_cache.get(d.trace.duration)
            if grid is None:
                grid = np.linspace(0.0, d.trace.duration, 512)
                grid_cache[d.trace.duration] = grid
            harvest = percentile_dict(d.trace.power(grid), qs=(10, 50, 90))
            out.append(
                DeviceResult.from_simulation(
                    d.index,
                    d.spec.name,
                    sim_result,
                    d.profile,
                    harvest_percentiles=harvest,
                    episodes=d.spec.episodes,
                    wall_s=wall / self._m,
                )
            )
        return out

    # ------------------------------------------------------------------ #
    def _snapshot(
        self, i, drawn, r_exit, r_correct, r_latency, r_energy, r_entropy,
        r_reason,
    ) -> SimulationResult:
        """Freeze device ``i``'s final-episode rows into a SimulationResult."""
        n = int(self._n_events[i])
        columns = RecordColumns()
        reason = np.ascontiguousarray(r_reason[:n, i])
        exits = np.ascontiguousarray(r_exit[:n, i])
        columns.time = np.ascontiguousarray(self._events[:n, i])
        columns.exit_index = exits
        # No learned continue rule in the batched form, so the first exit
        # is always the final one (and -1 for misses, like append_missed).
        columns.first_exit_index = exits
        columns.correct = np.ascontiguousarray(r_correct[:n, i])
        columns.latency_s = np.ascontiguousarray(r_latency[:n, i])
        columns.energy_mj = np.ascontiguousarray(r_energy[:n, i])
        columns.confidence_entropy = np.ascontiguousarray(r_entropy[:n, i])
        columns.continued = np.zeros(n, np.int64)
        columns.missed = reason != _MISS_NONE
        columns.miss_reason = [_REASONS[c] for c in reason.tolist()]
        columns.power_cycles = np.ones(n, np.int64)
        return SimulationResult.from_columns(
            columns,
            total_env_energy_mj=float(self._total_env[i]),
            total_consumed_mj=float(drawn),
            duration_s=float(self._duration[i]),
            profile_name=self.devices[i].profile.name,
        )
