"""Simulation results and the paper's figures of merit.

The headline metric is **IEpmJ** — interesting events correctly processed
per milliJoule of harvested energy (paper Eq. 1).  ``E_total`` is the
energy the *environment* offered over the simulated window (a property of
the trace, not of the policy), so maximizing IEpmJ is exactly maximizing
the average accuracy over all events, missed events counting as wrong.

Event outcomes are stored struct-of-arrays: one numpy column per field,
built by :class:`RecordColumns` as the simulator's event loop appends
outcomes.  Every aggregate (counts, IEpmJ, percentiles, exit histograms)
reduces whole columns instead of iterating per-event objects — the fleet
layer summarizes thousands of runs, so the row-oriented path must never be
on the hot path.  Callers that want per-event objects still get them:
:attr:`SimulationResult.records` lazily materializes a list of
:class:`EventRecord` snapshots on first access (read-only with respect to
the aggregates — edits to a snapshot do not flow back into the columns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Reasons an event can be missed.
MISS_BUSY = "busy"          # device still processing a previous event
MISS_ENERGY = "energy"      # no exit affordable / inference incomplete


def percentile_dict(values, qs) -> dict:
    """Percentile summary keyed ``"p50"``/``"p90"``/...; zeros when empty.

    Shared by the per-run summarization hooks below and the fleet-level
    aggregators in :mod:`repro.fleet.results`.

    Implementation note: this replicates ``np.percentile``'s default
    linear-interpolation method bit-for-bit (same virtual-index arithmetic,
    same 0.5-switched lerp) on a sorted copy.  The batched fleet engine
    summarizes every device through here, and ``np.percentile``'s dispatch
    machinery (~50 us/call) was a measurable slice of its per-device
    budget; the direct form is ~5x faster and exact, so goldens recorded
    against ``np.percentile`` output still match.
    """
    if not len(values):
        return {f"p{q:g}": 0.0 for q in qs}
    a = np.sort(np.asarray(values, dtype=np.float64))
    virtual = np.true_divide(np.asarray(qs, dtype=np.float64), 100) * (a.size - 1)
    lo = np.floor(virtual).astype(np.int64)
    g = virtual - lo
    lower = a[lo]
    upper = a[np.ceil(virtual).astype(np.int64)]
    diff = upper - lower
    points = lower + g * diff
    fix = g >= 0.5
    points[fix] = upper[fix] - diff[fix] * (1 - g[fix])
    return {f"p{q:g}": float(v) for q, v in zip(qs, points)}


def summary_delta(base: dict, other: dict, keys=None) -> dict:
    """``other - base`` over the shared scalar metrics of two summaries.

    Comparison reducer for A/B runs of the same environment under
    different policies (the campaign layer's per-cell marginals).  ``keys``
    restricts the comparison; by default every key whose value is a plain
    number in *both* dicts is compared, so nested percentile tables and
    labels pass through untouched (i.e. are ignored).
    """
    if keys is None:
        keys = [
            k
            for k, v in base.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
            and isinstance(other.get(k), (int, float))
            and not isinstance(other.get(k), bool)
        ]
    out = {}
    for k in keys:
        if k not in base or k not in other:
            raise KeyError(f"summary_delta: key {k!r} missing from a summary")
        out[k] = other[k] - base[k]
    return out


def reduce_summaries(summaries, keys, qs=(10, 50, 90)) -> dict:
    """Per-key percentile spread over a list of summary dicts.

    Used by campaign reports to collapse the seed axis: the same
    (scenario, controller) cell replicated over a seed bank reduces to
    ``{metric: {"p10": ..., "p50": ..., "p90": ...}}`` robustness tables.

    Summaries that lack a key are skipped for that key (a cell replayed
    from an older payload, or a degraded run whose summary omits optional
    metrics); a key present in *no* summary — including an empty
    ``summaries`` list, e.g. a fully-quarantined cell — reduces to the
    all-zero percentile table rather than raising.
    """
    out = {}
    for k in keys:
        out[k] = percentile_dict(
            [float(s[k]) for s in summaries if k in s], qs
        )
    return out


@dataclass(slots=True)
class EventRecord:
    """Outcome of one event (one row of the columnar result)."""

    time: float
    exit_index: int = -1          # final exit used; -1 for missed events
    first_exit_index: int = -1    # exit first selected (before incremental)
    correct: bool = False
    latency_s: float = 0.0
    energy_mj: float = 0.0
    confidence_entropy: float = 1.0
    continued: int = 0            # number of incremental continuations
    missed: bool = False
    miss_reason: str = ""
    power_cycles: int = 1

    @property
    def processed(self) -> bool:
        return not self.missed


class RecordColumns:
    """Append-only struct-of-arrays builder for event outcomes.

    The simulator appends one row per event into plain Python lists (cheap
    per-event) and :meth:`SimulationResult.from_columns` freezes them into
    numpy columns once per run.
    """

    __slots__ = (
        "time", "exit_index", "first_exit_index", "correct", "latency_s",
        "energy_mj", "confidence_entropy", "continued", "missed",
        "miss_reason", "power_cycles",
    )

    def __init__(self):
        self.time = []
        self.exit_index = []
        self.first_exit_index = []
        self.correct = []
        self.latency_s = []
        self.energy_mj = []
        self.confidence_entropy = []
        self.continued = []
        self.missed = []
        self.miss_reason = []
        self.power_cycles = []

    def __len__(self) -> int:
        return len(self.time)

    def append_missed(
        self, time: float, reason: str, latency_s: float = 0.0, power_cycles: int = 1
    ) -> None:
        self.time.append(time)
        self.exit_index.append(-1)
        self.first_exit_index.append(-1)
        self.correct.append(False)
        self.latency_s.append(latency_s)
        self.energy_mj.append(0.0)
        self.confidence_entropy.append(1.0)
        self.continued.append(0)
        self.missed.append(True)
        self.miss_reason.append(reason)
        self.power_cycles.append(power_cycles)

    def append_processed(
        self,
        time: float,
        exit_index: int,
        first_exit_index: int,
        correct: bool,
        latency_s: float,
        energy_mj: float,
        confidence_entropy: float,
        continued: int = 0,
        power_cycles: int = 1,
    ) -> None:
        self.time.append(time)
        self.exit_index.append(exit_index)
        self.first_exit_index.append(first_exit_index)
        self.correct.append(bool(correct))
        self.latency_s.append(latency_s)
        self.energy_mj.append(energy_mj)
        self.confidence_entropy.append(confidence_entropy)
        self.continued.append(continued)
        self.missed.append(False)
        self.miss_reason.append("")
        self.power_cycles.append(power_cycles)

    def append_record(self, record: EventRecord) -> None:
        self.time.append(record.time)
        self.exit_index.append(record.exit_index)
        self.first_exit_index.append(record.first_exit_index)
        self.correct.append(bool(record.correct))
        self.latency_s.append(record.latency_s)
        self.energy_mj.append(record.energy_mj)
        self.confidence_entropy.append(record.confidence_entropy)
        self.continued.append(record.continued)
        self.missed.append(bool(record.missed))
        self.miss_reason.append(record.miss_reason)
        self.power_cycles.append(record.power_cycles)


class SimulationResult:
    """Aggregate outcome of one trace run (struct-of-arrays backed).

    Construct either from a list of :class:`EventRecord` (row-oriented
    compatibility path, used by tests and hand-built results) or from a
    :class:`RecordColumns` via :meth:`from_columns` (the simulator's path).
    """

    __slots__ = (
        "total_env_energy_mj", "total_consumed_mj", "duration_s",
        "profile_name", "metadata",
        "_time", "_exit_index", "_first_exit_index", "_correct",
        "_latency_s", "_energy_mj", "_confidence_entropy", "_continued",
        "_missed", "_miss_reason", "_power_cycles", "_records",
        "_num_missed_cache", "_num_correct_cache",
    )

    def __init__(
        self,
        records,
        total_env_energy_mj: float,
        total_consumed_mj: float,
        duration_s: float,
        profile_name: str = "",
        metadata: dict = None,
    ):
        columns = RecordColumns()
        for record in records:
            columns.append_record(record)
        self._adopt_columns(columns)
        self._records = list(records)
        self.total_env_energy_mj = total_env_energy_mj
        self.total_consumed_mj = total_consumed_mj
        self.duration_s = duration_s
        self.profile_name = profile_name
        self.metadata = metadata if metadata is not None else {}

    @classmethod
    def from_columns(
        cls,
        columns: RecordColumns,
        total_env_energy_mj: float,
        total_consumed_mj: float,
        duration_s: float,
        profile_name: str = "",
        metadata: dict = None,
    ) -> "SimulationResult":
        self = cls.__new__(cls)
        self._adopt_columns(columns)
        self._records = None
        self.total_env_energy_mj = total_env_energy_mj
        self.total_consumed_mj = total_consumed_mj
        self.duration_s = duration_s
        self.profile_name = profile_name
        self.metadata = metadata if metadata is not None else {}
        return self

    def _adopt_columns(self, columns: RecordColumns) -> None:
        self._time = np.asarray(columns.time, dtype=np.float64)
        self._exit_index = np.asarray(columns.exit_index, dtype=np.int64)
        self._first_exit_index = np.asarray(columns.first_exit_index, dtype=np.int64)
        self._correct = np.asarray(columns.correct, dtype=bool)
        self._latency_s = np.asarray(columns.latency_s, dtype=np.float64)
        self._energy_mj = np.asarray(columns.energy_mj, dtype=np.float64)
        self._confidence_entropy = np.asarray(
            columns.confidence_entropy, dtype=np.float64
        )
        self._continued = np.asarray(columns.continued, dtype=np.int64)
        self._missed = np.asarray(columns.missed, dtype=bool)
        self._miss_reason = list(columns.miss_reason)
        self._power_cycles = np.asarray(columns.power_cycles, dtype=np.int64)
        # Count caches: several aggregate properties chain through these
        # reductions (iepmj -> num_correct, accuracies -> both), and the
        # fleet layer reads many such properties per device.  The columns
        # are frozen once adopted, so counting them once is safe.
        self._num_missed_cache = None
        self._num_correct_cache = None

    # ---------------- row access ---------------- #
    @property
    def records(self) -> list:
        """Per-event :class:`EventRecord` rows, materialized lazily.

        The rows are read-only *snapshots* of the numpy columns: mutating
        a returned record does not write back into the columns the
        aggregate properties reduce.  Build a new ``SimulationResult`` from
        edited records instead.
        """
        if self._records is None:
            self._records = [
                EventRecord(
                    time=t, exit_index=k, first_exit_index=fk, correct=c,
                    latency_s=lat, energy_mj=e, confidence_entropy=h,
                    continued=cont, missed=m, miss_reason=reason,
                    power_cycles=pc,
                )
                for t, k, fk, c, lat, e, h, cont, m, reason, pc in zip(
                    self._time.tolist(), self._exit_index.tolist(),
                    self._first_exit_index.tolist(), self._correct.tolist(),
                    self._latency_s.tolist(), self._energy_mj.tolist(),
                    self._confidence_entropy.tolist(), self._continued.tolist(),
                    self._missed.tolist(), self._miss_reason,
                    self._power_cycles.tolist(),
                )
            ]
        return self._records

    def __eq__(self, other) -> bool:
        if not isinstance(other, SimulationResult):
            return NotImplemented
        return (
            self.total_env_energy_mj == other.total_env_energy_mj
            and self.total_consumed_mj == other.total_consumed_mj
            and self.duration_s == other.duration_s
            and self.profile_name == other.profile_name
            and self.metadata == other.metadata
            and self._miss_reason == other._miss_reason
            and np.array_equal(self._time, other._time)
            and np.array_equal(self._exit_index, other._exit_index)
            and np.array_equal(self._first_exit_index, other._first_exit_index)
            and np.array_equal(self._correct, other._correct)
            and np.array_equal(self._latency_s, other._latency_s)
            and np.array_equal(self._energy_mj, other._energy_mj)
            and np.array_equal(self._confidence_entropy, other._confidence_entropy)
            and np.array_equal(self._continued, other._continued)
            and np.array_equal(self._missed, other._missed)
            and np.array_equal(self._power_cycles, other._power_cycles)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationResult(events={self.num_events}, "
            f"correct={self.num_correct}, iepmj={self.iepmj:.4f}, "
            f"profile={self.profile_name!r})"
        )

    # ---------------- counts ---------------- #
    @property
    def num_events(self) -> int:
        return int(self._time.size)

    @property
    def num_processed(self) -> int:
        return int(self._time.size) - self.num_missed

    @property
    def num_missed(self) -> int:
        if self._num_missed_cache is None:
            self._num_missed_cache = int(np.count_nonzero(self._missed))
        return self._num_missed_cache

    @property
    def num_correct(self) -> int:
        if self._num_correct_cache is None:
            self._num_correct_cache = int(
                np.count_nonzero(self._correct & ~self._missed)
            )
        return self._num_correct_cache

    # ---------------- paper metrics ---------------- #
    @property
    def iepmj(self) -> float:
        """Interesting Events per milliJoule (Eq. 1)."""
        if self.total_env_energy_mj <= 0:
            return 0.0
        return self.num_correct / self.total_env_energy_mj

    @property
    def average_accuracy(self) -> float:
        """Accuracy over ALL events; missed events count as wrong."""
        if not self.num_events:
            return 0.0
        return self.num_correct / self.num_events

    @property
    def processed_accuracy(self) -> float:
        """Accuracy over processed events only (paper Section V-C)."""
        processed = self.num_processed
        if processed == 0:
            return 0.0
        return self.num_correct / processed

    # ---------------- latency ---------------- #
    @property
    def mean_latency_s(self) -> float:
        """Per-event latency: event occurrence to end of inference."""
        lats = self._latency_s[~self._missed]
        return float(np.mean(lats)) if lats.size else 0.0

    @property
    def mean_inference_energy_mj(self) -> float:
        vals = self._energy_mj[~self._missed]
        return float(np.mean(vals)) if vals.size else 0.0

    def latency_percentiles(self, qs=(50, 90, 99)) -> dict:
        """Latency percentiles (s) over processed events, keyed ``"p50"``…

        Summarization hook for fleet aggregation: workers ship percentile
        dicts instead of full event records.
        """
        return percentile_dict(self._latency_s[~self._missed], qs)

    def energy_percentiles(self, qs=(50, 90, 99)) -> dict:
        """Per-inference energy percentiles (mJ) over processed events."""
        return percentile_dict(self._energy_mj[~self._missed], qs)

    # ---------------- exit usage ---------------- #
    def exit_counts(self, num_exits: int) -> list:
        """Processed-event count per final exit (Fig. 7(b))."""
        exits = self._exit_index[~self._missed]
        exits = exits[(exits >= 0) & (exits < num_exits)]
        counts = np.bincount(exits, minlength=num_exits)
        return [int(c) for c in counts[:num_exits]]

    def exit_fractions(self, num_exits: int) -> list:
        """Fraction of ALL events resolved at each exit (the paper's p_i)."""
        if not self.num_events:
            return [0.0] * num_exits
        return [c / self.num_events for c in self.exit_counts(num_exits)]

    def miss_counts(self) -> dict:
        """Missed events grouped by reason."""
        out: dict = {}
        for reason, missed in zip(self._miss_reason, self._missed.tolist()):
            if missed:
                out[reason] = out.get(reason, 0) + 1
        return out

    def summary(self) -> dict:
        """Flat dict of the headline numbers (for benches/EXPERIMENTS.md)."""
        return {
            "profile": self.profile_name,
            "events": self.num_events,
            "processed": self.num_processed,
            "missed": self.num_missed,
            "correct": self.num_correct,
            "iepmj": self.iepmj,
            "average_accuracy": self.average_accuracy,
            "processed_accuracy": self.processed_accuracy,
            "mean_latency_s": self.mean_latency_s,
            "total_env_energy_mj": self.total_env_energy_mj,
            "total_consumed_mj": self.total_consumed_mj,
        }
