"""Simulation results and the paper's figures of merit.

The headline metric is **IEpmJ** — interesting events correctly processed
per milliJoule of harvested energy (paper Eq. 1).  ``E_total`` is the
energy the *environment* offered over the simulated window (a property of
the trace, not of the policy), so maximizing IEpmJ is exactly maximizing
the average accuracy over all events, missed events counting as wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Reasons an event can be missed.
MISS_BUSY = "busy"          # device still processing a previous event
MISS_ENERGY = "energy"      # no exit affordable / inference incomplete


def percentile_dict(values, qs) -> dict:
    """Percentile summary keyed ``"p50"``/``"p90"``/...; zeros when empty.

    Shared by the per-run summarization hooks below and the fleet-level
    aggregators in :mod:`repro.fleet.results`.
    """
    if not len(values):
        return {f"p{q:g}": 0.0 for q in qs}
    points = np.percentile(values, list(qs))
    return {f"p{q:g}": float(v) for q, v in zip(qs, points)}


@dataclass
class EventRecord:
    """Outcome of one event."""

    time: float
    exit_index: int = -1          # final exit used; -1 for missed events
    first_exit_index: int = -1    # exit first selected (before incremental)
    correct: bool = False
    latency_s: float = 0.0
    energy_mj: float = 0.0
    confidence_entropy: float = 1.0
    continued: int = 0            # number of incremental continuations
    missed: bool = False
    miss_reason: str = ""
    power_cycles: int = 1

    @property
    def processed(self) -> bool:
        return not self.missed


@dataclass
class SimulationResult:
    """Aggregate outcome of one trace run."""

    records: list                 # EventRecord per event, in time order
    total_env_energy_mj: float    # energy offered by the trace (E_total)
    total_consumed_mj: float      # energy actually drawn from storage
    duration_s: float
    profile_name: str = ""
    metadata: dict = field(default_factory=dict)

    # ---------------- counts ---------------- #
    @property
    def num_events(self) -> int:
        return len(self.records)

    @property
    def num_processed(self) -> int:
        return sum(1 for r in self.records if r.processed)

    @property
    def num_missed(self) -> int:
        return sum(1 for r in self.records if r.missed)

    @property
    def num_correct(self) -> int:
        return sum(1 for r in self.records if r.processed and r.correct)

    # ---------------- paper metrics ---------------- #
    @property
    def iepmj(self) -> float:
        """Interesting Events per milliJoule (Eq. 1)."""
        if self.total_env_energy_mj <= 0:
            return 0.0
        return self.num_correct / self.total_env_energy_mj

    @property
    def average_accuracy(self) -> float:
        """Accuracy over ALL events; missed events count as wrong."""
        if not self.records:
            return 0.0
        return self.num_correct / self.num_events

    @property
    def processed_accuracy(self) -> float:
        """Accuracy over processed events only (paper Section V-C)."""
        processed = self.num_processed
        if processed == 0:
            return 0.0
        return self.num_correct / processed

    # ---------------- latency ---------------- #
    @property
    def mean_latency_s(self) -> float:
        """Per-event latency: event occurrence to end of inference."""
        lats = [r.latency_s for r in self.records if r.processed]
        return float(np.mean(lats)) if lats else 0.0

    @property
    def mean_inference_energy_mj(self) -> float:
        vals = [r.energy_mj for r in self.records if r.processed]
        return float(np.mean(vals)) if vals else 0.0

    def latency_percentiles(self, qs=(50, 90, 99)) -> dict:
        """Latency percentiles (s) over processed events, keyed ``"p50"``…

        Summarization hook for fleet aggregation: workers ship percentile
        dicts instead of full event records.
        """
        return percentile_dict([r.latency_s for r in self.records if r.processed], qs)

    def energy_percentiles(self, qs=(50, 90, 99)) -> dict:
        """Per-inference energy percentiles (mJ) over processed events."""
        return percentile_dict([r.energy_mj for r in self.records if r.processed], qs)

    # ---------------- exit usage ---------------- #
    def exit_counts(self, num_exits: int) -> list:
        """Processed-event count per final exit (Fig. 7(b))."""
        counts = [0] * num_exits
        for r in self.records:
            if r.processed and 0 <= r.exit_index < num_exits:
                counts[r.exit_index] += 1
        return counts

    def exit_fractions(self, num_exits: int) -> list:
        """Fraction of ALL events resolved at each exit (the paper's p_i)."""
        if not self.records:
            return [0.0] * num_exits
        return [c / self.num_events for c in self.exit_counts(num_exits)]

    def miss_counts(self) -> dict:
        """Missed events grouped by reason."""
        out: dict = {}
        for r in self.records:
            if r.missed:
                out[r.miss_reason] = out.get(r.miss_reason, 0) + 1
        return out

    def summary(self) -> dict:
        """Flat dict of the headline numbers (for benches/EXPERIMENTS.md)."""
        return {
            "profile": self.profile_name,
            "events": self.num_events,
            "processed": self.num_processed,
            "missed": self.num_missed,
            "correct": self.num_correct,
            "iepmj": self.iepmj,
            "average_accuracy": self.average_accuracy,
            "processed_accuracy": self.processed_accuracy,
            "mean_latency_s": self.mean_latency_s,
            "total_env_energy_mj": self.total_env_energy_mj,
            "total_consumed_mj": self.total_consumed_mj,
        }
