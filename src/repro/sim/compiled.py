"""numba ``@njit`` form of the lockstep engine's charging advance.

Imported lazily by :class:`~repro.sim.batch.BatchedFleetEngine` when
``REPRO_KERNEL=compiled`` resolves; numba stays an optional dependency
and this module imports cleanly without it (:data:`HAVE_NUMBA` gates
use).  The loop replays ``EnergyStorage.charge``/``leak`` row by row
with the identical IEEE-754 operation sequence, so results are
bit-for-bit the numpy branches' — and the scalar reference's.

No ``fastmath``: reassociation would break bit-identity.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the numpy branches take over
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Decorator stand-in so the module imports without numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


@njit(cache=True)
def charge_rows(
    rows, te, cum_j, t_charged, cum_charged, level, efficiency,
    capacity, leakage, no_leak,
):
    """Advance the charging ledger of every row in ``rows`` to its event.

    Equivalent to the lockstep loop's vectorized charging branches with
    ``rows = nonzero(charging)`` — non-charging rows there only receive
    exact ``+0.0``/``-0.0`` identities, so skipping them entirely leaves
    the same bits.  Mutates ``level`` / ``t_charged`` / ``cum_charged``
    in place.
    """
    for idx in range(rows.size):
        r = rows[idx]
        v = cum_j[r] - cum_charged[r]
        inc = v if v > 0.0 else 0.0
        banked = inc * efficiency[r]
        room = capacity[r] - level[r]
        stored = banked if banked < room else room
        level[r] += stored
        if not no_leak:
            el = leakage[r] * (te[r] - t_charged[r])
            lv = level[r]
            lost = lv if lv < el else el
            level[r] = lv - lost
        t_charged[r] = te[r]
        cum_charged[r] = cum_j[r]
