"""Event-driven simulation of EH-powered intermittent inference."""

from repro.sim.profiles import InferenceProfile
from repro.sim.results import EventRecord, SimulationResult
from repro.sim.simulator import Simulator, SimulatorConfig

__all__ = [
    "InferenceProfile",
    "EventRecord",
    "SimulationResult",
    "Simulator",
    "SimulatorConfig",
]
