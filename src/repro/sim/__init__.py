"""Event-driven simulation of EH-powered intermittent inference."""

from repro.sim.batch import BatchedFleetEngine, batch_eligible
from repro.sim.profiles import InferenceProfile
from repro.sim.results import EventRecord, SimulationResult
from repro.sim.simulator import Simulator, SimulatorConfig

__all__ = [
    "BatchedFleetEngine",
    "batch_eligible",
    "InferenceProfile",
    "EventRecord",
    "SimulationResult",
    "Simulator",
    "SimulatorConfig",
]
