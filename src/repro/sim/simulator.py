"""Event-driven simulator for EH-powered inference (paper Section II).

The simulator ties together a power trace, an energy store, an MCU cost
model, an inference profile, and a runtime controller, and plays a stream
of events against them:

* **single-cycle execution** (the paper's approach): when an event fires,
  the controller picks an exit the stored energy can complete in this
  power cycle; the result may then be refined by incremental inference.
* **intermittent execution** (the SONIC baseline [9]): the single exit's
  full inference runs across however many power cycles it takes; events
  arriving while the device is busy are lost, which is what tanks the
  baselines' IEpmJ under weak harvesting.

Correctness per event comes from either a *real* forward pass through the
attached network on a sampled dataset item (``mode="dataset"``) or a
Bernoulli draw from the measured per-exit accuracies (``mode="profile"``,
used in the RL search inner loop).  Profile mode couples exits through a
shared per-event difficulty draw, so a deeper exit is correct whenever a
shallower one would have been — matching the monotone-accuracy structure
real multi-exit networks show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.energy.storage import EnergyStorage
from repro.energy.traces import PowerTrace
from repro.errors import ConfigError, SimulationError
from repro.intermittent.execution import IntermittentExecutionEngine
from repro.intermittent.mcu import MCUSpec, MSP432
from repro.runtime.controller import Controller
from repro.runtime.state import RuntimeState
from repro.sim.profiles import InferenceProfile
from repro.sim.results import MISS_BUSY, MISS_ENERGY, EventRecord, SimulationResult
from repro.utils.mathx import normalized_entropy, softmax
from repro.utils.rng import as_generator


@dataclass
class SimulatorConfig:
    """Knobs of one simulation run."""

    mode: str = "profile"              # "profile" or "dataset"
    execution: str = "single-cycle"    # "single-cycle" or "intermittent"
    power_window_s: float = 30.0       # observation window for P
    seed: int = 0

    def __post_init__(self):
        if self.mode not in ("profile", "dataset"):
            raise ConfigError(f"mode must be 'profile' or 'dataset', got {self.mode!r}")
        if self.execution not in ("single-cycle", "intermittent"):
            raise ConfigError(
                f"execution must be 'single-cycle' or 'intermittent', got {self.execution!r}"
            )
        if self.power_window_s <= 0:
            raise ConfigError(
                f"power_window_s must be positive, got {self.power_window_s!r}"
            )


class Simulator:
    """Replays an event stream against one deployed inference profile."""

    def __init__(
        self,
        trace: PowerTrace,
        profile: InferenceProfile,
        controller: Controller,
        mcu: MCUSpec = MSP432,
        storage: Optional[EnergyStorage] = None,
        dataset=None,
        config: Optional[SimulatorConfig] = None,
    ):
        self.trace = trace
        self.profile = profile
        self.controller = controller
        self.mcu = mcu
        self.storage = storage or EnergyStorage(
            capacity_mj=2.0, efficiency=0.8, initial_mj=1.0
        )
        self.dataset = dataset
        self.config = config or SimulatorConfig()
        if self.config.mode == "dataset":
            if dataset is None:
                raise ConfigError("dataset mode requires a dataset")
            if profile.net is None:
                raise ConfigError("dataset mode requires profile.net")
        self._rng = as_generator(self.config.seed)
        self._peak_power = float(np.max(trace.samples_mw))
        self._engine = IntermittentExecutionEngine(trace, mcu)

    # ------------------------------------------------------------------ #
    # correctness / confidence sampling
    # ------------------------------------------------------------------ #
    def _sample_entropy(self, correct: bool) -> float:
        """Profile-mode surrogate for result confidence.

        Correct results concentrate at low normalized entropy, incorrect
        ones at high entropy — the separation that makes entropy a usable
        continue/stop signal in the first place (BranchyNet [10]).
        """
        if correct:
            return float(self._rng.beta(2.0, 8.0))
        return float(self._rng.beta(5.0, 3.0))

    def _begin_event_inference(self, exit_index: int):
        """First result at the selected exit.

        Returns (correct, entropy, continuation) where ``continuation``
        advances to deeper exits; its concrete type depends on the mode.
        """
        if self.config.mode == "dataset":
            i = int(self._rng.integers(len(self.dataset)))
            x = self.dataset.x[i:i + 1]
            label = int(self.dataset.y[i])
            cursor = self.profile.net.begin_incremental(x)
            logits = cursor.run_to_exit(exit_index)
            probs = softmax(logits, axis=1)[0]
            correct = int(np.argmax(probs)) == label
            return correct, float(normalized_entropy(probs[None, :])[0]), (cursor, label)
        difficulty = float(self._rng.random())
        correct = difficulty < self.profile.exit_accuracies[exit_index]
        return correct, self._sample_entropy(correct), difficulty

    def _continue_inference(self, continuation, exit_index: int):
        """Result after continuing to ``exit_index``."""
        if self.config.mode == "dataset":
            cursor, label = continuation
            logits = cursor.run_to_exit(exit_index)
            probs = softmax(logits, axis=1)[0]
            correct = int(np.argmax(probs)) == label
            return correct, float(normalized_entropy(probs[None, :])[0]), (cursor, label)
        difficulty = continuation
        correct = difficulty < self.profile.exit_accuracies[exit_index]
        return correct, self._sample_entropy(correct), difficulty

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self, events, reset_storage: bool = True) -> SimulationResult:
        """Replay ``events`` (sorted times) over the trace once.

        Controller learning state persists across calls, so repeated runs
        implement the paper's learning episodes (Fig. 7(a)).
        """
        events = np.asarray(events, dtype=np.float64)
        if events.size and (np.any(np.diff(events) < 0) or events[0] < 0):
            raise SimulationError("events must be sorted and non-negative")
        if reset_storage:
            self.storage.reset()
        duration = self.trace.duration
        records: list = []
        t_charged = 0.0
        busy_until = 0.0

        def advance(t: float) -> None:
            nonlocal t_charged
            if t < t_charged:
                return
            self.storage.charge(self.trace.energy_between(t_charged, t))
            self.storage.leak(t - t_charged)
            t_charged = t

        for te in events:
            te = float(te)
            if te < busy_until:
                records.append(
                    EventRecord(time=te, missed=True, miss_reason=MISS_BUSY)
                )
                continue
            advance(te)
            if self.config.execution == "intermittent":
                record, busy_until = self._run_intermittent_event(te, duration)
                t_charged = busy_until if record.processed or record.miss_reason == MISS_ENERGY else t_charged
                records.append(record)
                continue
            record, busy_until = self._run_single_cycle_event(te)
            records.append(record)

        advance(duration)
        self.controller.end_episode()
        return SimulationResult(
            records=records,
            total_env_energy_mj=self.trace.energy_between(0.0, duration),
            total_consumed_mj=self.storage.total_drawn_mj,
            duration_s=duration,
            profile_name=self.profile.name,
        )

    # ------------------------------------------------------------------ #
    def _run_single_cycle_event(self, te: float):
        """The paper's execution model: guaranteed result this power cycle."""
        state = RuntimeState(
            time=te,
            energy_mj=self.storage.level_mj,
            capacity_mj=self.storage.capacity_mj,
            charge_power_mw=self.trace.mean_power(te, self.config.power_window_s),
            peak_power_mw=self._peak_power,
        )
        k = self.controller.select_exit(state, self.profile.exit_energy_mj)
        if k < 0 or k >= self.profile.num_exits or not self.storage.can_afford(
            self.profile.exit_energy_mj[k]
        ):
            self.controller.report_event(0.0)
            return EventRecord(time=te, missed=True, miss_reason=MISS_ENERGY), te

        first_k = k
        energy_spent = self.profile.exit_energy_mj[k]
        self.storage.draw(energy_spent)
        busy = self.mcu.inference_time_s(self.profile.exit_flops[k])
        correct, entropy, continuation = self._begin_event_inference(k)
        continued = 0
        while k < self.profile.num_exits - 1:
            marginal = self.profile.incremental_energy_mj[k]
            affordable = self.storage.can_afford(marginal)
            if not self.controller.decide_continue(
                entropy, self.storage.fraction_full, affordable
            ):
                break
            self.storage.draw(marginal)
            energy_spent += marginal
            busy += self.mcu.inference_time_s(self.profile.incremental_flops[k])
            k += 1
            continued += 1
            correct, entropy, continuation = self._continue_inference(continuation, k)
        self.controller.report_event(1.0 if correct else 0.0)
        record = EventRecord(
            time=te,
            exit_index=k,
            first_exit_index=first_k,
            correct=bool(correct),
            latency_s=busy,
            energy_mj=energy_spent,
            confidence_entropy=entropy,
            continued=continued,
        )
        return record, te + busy

    # ------------------------------------------------------------------ #
    def _run_intermittent_event(self, te: float, duration: float):
        """SONIC-style baseline: one fixed inference across power cycles."""
        k = self.profile.num_exits - 1  # single-exit nets: their only exit
        energy_needed = self.profile.exit_energy_mj[k]
        run = self._engine.run_inference(energy_needed, te, self.storage, deadline=duration)
        if not run.completed:
            return (
                EventRecord(
                    time=te,
                    missed=True,
                    miss_reason=MISS_ENERGY,
                    latency_s=run.latency_s,
                    power_cycles=run.power_cycles,
                ),
                run.finish_time,
            )
        correct, entropy, _ = self._begin_event_inference(k)
        record = EventRecord(
            time=te,
            exit_index=k,
            first_exit_index=k,
            correct=bool(correct),
            latency_s=run.latency_s,
            energy_mj=run.energy_consumed_mj + run.overhead_energy_mj,
            confidence_entropy=entropy,
            power_cycles=run.power_cycles,
        )
        return record, run.finish_time
