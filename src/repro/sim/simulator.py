"""Event-driven simulator for EH-powered inference (paper Section II).

The simulator ties together a power trace, an energy store, an MCU cost
model, an inference profile, and a runtime controller, and plays a stream
of events against them:

* **single-cycle execution** (the paper's approach): when an event fires,
  the controller picks an exit the stored energy can complete in this
  power cycle; the result may then be refined by incremental inference.
* **intermittent execution** (the SONIC baseline [9]): the single exit's
  full inference runs across however many power cycles it takes; events
  arriving while the device is busy are lost, which is what tanks the
  baselines' IEpmJ under weak harvesting.

Correctness per event comes from either a *real* forward pass through the
attached network on a sampled dataset item (``mode="dataset"``) or a
Bernoulli draw from the measured per-exit accuracies (``mode="profile"``,
used in the RL search inner loop).  Profile mode couples exits through a
shared per-event difficulty draw, so a deeper exit is correct whenever a
shallower one would have been — matching the monotone-accuracy structure
real multi-exit networks show.

Determinism: a run is a pure function of (trace, profile, controller
state, config.seed, events).  Profile-mode variates are drawn through a
pooled batch sampler (:class:`~repro.utils.rng.PooledDraws`) so the inner
event loop makes no per-event Generator calls; the realized stream is
deterministic per seed but differs from the pre-vectorization scalar
draws, so absolute metric values were re-baselined at PR 2 — compare
across versions with tolerances, never bit equality.  Within a version,
serial and parallel fleet execution remain bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.energy.storage import EnergyStorage
from repro.energy.traces import PowerTrace
from repro.errors import ConfigError, SimulationError
from repro.intermittent.execution import IntermittentExecutionEngine
from repro.intermittent.mcu import MCUSpec, MSP432
from repro.obs.recorder import get_recorder
from repro.runtime.controller import Controller
from repro.runtime.state import RuntimeState
from repro.sim.profiles import InferenceProfile
from repro.sim.results import (
    MISS_BUSY,
    MISS_ENERGY,
    RecordColumns,
    SimulationResult,
)
from repro.utils.mathx import normalized_entropy, softmax
from repro.utils.rng import PooledDraws, as_generator


@dataclass
class SimulatorConfig:
    """Knobs of one simulation run."""

    mode: str = "profile"              # "profile" or "dataset"
    execution: str = "single-cycle"    # "single-cycle" or "intermittent"
    power_window_s: float = 30.0       # observation window for P
    seed: int = 0

    def __post_init__(self):
        if self.mode not in ("profile", "dataset"):
            raise ConfigError(f"mode must be 'profile' or 'dataset', got {self.mode!r}")
        if self.execution not in ("single-cycle", "intermittent"):
            raise ConfigError(
                f"execution must be 'single-cycle' or 'intermittent', got {self.execution!r}"
            )
        if self.power_window_s <= 0:
            raise ConfigError(
                f"power_window_s must be positive, got {self.power_window_s!r}"
            )


class Simulator:
    """Replays an event stream against one deployed inference profile."""

    def __init__(
        self,
        trace: PowerTrace,
        profile: InferenceProfile,
        controller: Controller,
        mcu: MCUSpec = MSP432,
        storage: Optional[EnergyStorage] = None,
        dataset=None,
        config: Optional[SimulatorConfig] = None,
    ):
        self.trace = trace
        self.profile = profile
        self.controller = controller
        self.mcu = mcu
        self.storage = storage or EnergyStorage(
            capacity_mj=2.0, efficiency=0.8, initial_mj=1.0
        )
        self.dataset = dataset
        self.config = config or SimulatorConfig()
        if self.config.mode == "dataset":
            if dataset is None:
                raise ConfigError("dataset mode requires a dataset")
            if profile.net is None:
                raise ConfigError("dataset mode requires profile.net")
        self._rng = as_generator(self.config.seed)
        # Profile mode draws difficulty/entropy once per event result; a
        # pooled sampler batches the underlying Generator calls so the
        # inner event loop makes no per-event Generator calls at all.
        self._draws = PooledDraws(self._rng)
        self._peak_power = float(np.max(trace.samples_mw))
        self._engine = IntermittentExecutionEngine(trace, mcu)
        # Per-exit costs as plain Python lists: the event loop indexes them
        # thousands of times per run, where numpy scalar extraction and
        # repeated MCU-method calls would dominate.
        self._exit_energy = [float(e) for e in profile.exit_energy_mj]
        self._exit_time_s = [mcu.inference_time_s(f) for f in profile.exit_flops]
        self._inc_energy = [float(e) for e in profile.incremental_energy_mj]
        self._inc_time_s = [
            mcu.inference_time_s(f) for f in profile.incremental_flops
        ]
        self._num_exits = profile.num_exits

    # ------------------------------------------------------------------ #
    # correctness / confidence sampling
    # ------------------------------------------------------------------ #
    def _sample_entropy(self, correct: bool) -> float:
        """Profile-mode surrogate for result confidence.

        Correct results concentrate at low normalized entropy, incorrect
        ones at high entropy — the separation that makes entropy a usable
        continue/stop signal in the first place (BranchyNet [10]).
        """
        if correct:
            return self._draws.beta(2.0, 8.0)
        return self._draws.beta(5.0, 3.0)

    def _begin_event_inference(self, exit_index: int):
        """First result at the selected exit.

        Returns (correct, entropy, continuation) where ``continuation``
        advances to deeper exits; its concrete type depends on the mode.
        """
        if self.config.mode == "dataset":
            i = int(self._rng.integers(len(self.dataset)))
            x = self.dataset.x[i:i + 1]
            label = int(self.dataset.y[i])
            cursor = self.profile.net.begin_incremental(x)
            logits = cursor.run_to_exit(exit_index)
            probs = softmax(logits, axis=1)[0]
            correct = int(np.argmax(probs)) == label
            return correct, float(normalized_entropy(probs[None, :])[0]), (cursor, label)
        difficulty = self._draws.random()
        correct = difficulty < self.profile.exit_accuracies[exit_index]
        return correct, self._sample_entropy(correct), difficulty

    def _continue_inference(self, continuation, exit_index: int):
        """Result after continuing to ``exit_index``."""
        if self.config.mode == "dataset":
            cursor, label = continuation
            logits = cursor.run_to_exit(exit_index)
            probs = softmax(logits, axis=1)[0]
            correct = int(np.argmax(probs)) == label
            return correct, float(normalized_entropy(probs[None, :])[0]), (cursor, label)
        difficulty = continuation
        correct = difficulty < self.profile.exit_accuracies[exit_index]
        return correct, self._sample_entropy(correct), difficulty

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self, events, reset_storage: bool = True) -> SimulationResult:
        """Replay ``events`` (sorted times) over the trace once.

        Controller learning state persists across calls, so repeated runs
        implement the paper's learning episodes (Fig. 7(a)).

        The loop is vectorized everywhere the math allows: cumulative
        harvested energy at every event time and the controller's observed
        charging power are precomputed in bulk, so each event's charge
        increment is one subtraction instead of a per-event interpolation.
        """
        events = np.asarray(events, dtype=np.float64)
        if events.size and (np.any(np.diff(events) < 0) or events[0] < 0):
            raise SimulationError("events must be sorted and non-negative")
        metrics = get_recorder().metrics
        if metrics is not None:
            metrics.inc("sim.runs")
            metrics.inc("sim.events", int(events.size))
            if self.config.execution == "intermittent":
                metrics.inc("sim.runs.intermittent")
        storage = self.storage
        if reset_storage:
            storage.reset()
        trace = self.trace
        duration = trace.duration
        total_env_energy = trace.total_energy_mj
        intermittent = self.config.execution == "intermittent"
        cum_at_event, charge_power = [], []
        if events.size:
            cum_at_event = trace._cum_bulk(np.clip(events, 0.0, duration)).tolist()
            if not intermittent:
                # Observed charging power P at every event, one bulk query;
                # the intermittent baseline never consults P.
                charge_power = np.asarray(
                    trace.mean_power(events, self.config.power_window_s),
                    dtype=np.float64,
                ).tolist()

        columns = RecordColumns()
        t_charged = 0.0
        cum_charged = 0.0
        busy_until = 0.0
        for j, te in enumerate(events.tolist()):
            if te < busy_until:
                columns.append_missed(te, MISS_BUSY)
                continue
            if te > t_charged:
                # Precomputed charge increment; max() guards the (sub-ulp)
                # case where two bulk cumulative evaluations cross.
                storage.charge(max(cum_at_event[j] - cum_charged, 0.0))
                storage.leak(te - t_charged)
                t_charged = te
                cum_charged = cum_at_event[j]
            if intermittent:
                busy_until = self._run_intermittent_event(te, duration, columns)
                # The engine charges/drains through its own power cycles up
                # to finish_time, so the ledger resumes there.
                t_charged = busy_until
                cum_charged = trace._cum_at(trace._clip_time(busy_until))
                continue
            busy_until = self._run_single_cycle_event(te, charge_power[j], columns)

        if duration > t_charged:
            storage.charge(max(total_env_energy - cum_charged, 0.0))
            storage.leak(duration - t_charged)
        self.controller.end_episode()
        return SimulationResult.from_columns(
            columns,
            total_env_energy_mj=total_env_energy,
            total_consumed_mj=storage.total_drawn_mj,
            duration_s=duration,
            profile_name=self.profile.name,
        )

    # ------------------------------------------------------------------ #
    def _run_single_cycle_event(
        self, te: float, charge_power_mw: float, columns: RecordColumns
    ) -> float:
        """The paper's execution model: guaranteed result this power cycle.

        Appends the event's outcome to ``columns`` and returns the time the
        device is busy until.  ``charge_power_mw`` is the precomputed
        trailing-window mean power at ``te``.
        """
        storage = self.storage
        state = RuntimeState(
            time=te,
            energy_mj=storage.level_mj,
            capacity_mj=storage.capacity_mj,
            charge_power_mw=charge_power_mw,
            peak_power_mw=self._peak_power,
        )
        k = self.controller.select_exit(state, self.profile.exit_energy_mj)
        if k < 0 or k >= self._num_exits or not storage.can_afford(
            self._exit_energy[k]
        ):
            self.controller.report_event(0.0)
            columns.append_missed(te, MISS_ENERGY)
            return te

        first_k = k
        energy_spent = self._exit_energy[k]
        storage.draw(energy_spent)
        busy = self._exit_time_s[k]
        correct, entropy, continuation = self._begin_event_inference(k)
        continued = 0
        last_exit = self._num_exits - 1
        while k < last_exit:
            marginal = self._inc_energy[k]
            affordable = storage.can_afford(marginal)
            if not self.controller.decide_continue(
                entropy, storage.fraction_full, affordable
            ):
                break
            storage.draw(marginal)
            energy_spent += marginal
            busy += self._inc_time_s[k]
            k += 1
            continued += 1
            correct, entropy, continuation = self._continue_inference(continuation, k)
        self.controller.report_event(1.0 if correct else 0.0)
        columns.append_processed(
            te,
            exit_index=k,
            first_exit_index=first_k,
            correct=bool(correct),
            latency_s=busy,
            energy_mj=energy_spent,
            confidence_entropy=entropy,
            continued=continued,
        )
        return te + busy

    # ------------------------------------------------------------------ #
    def _run_intermittent_event(
        self, te: float, duration: float, columns: RecordColumns
    ) -> float:
        """SONIC-style baseline: one fixed inference across power cycles.

        Appends the event's outcome to ``columns`` and returns the finish
        time (the device is busy and the storage ledger advanced to it).
        The multi-cycle loop itself is the shared kernel
        (:func:`repro.intermittent.kernel.run_job_scalar`), which the
        batched fleet engine replicates across the device axis
        (:class:`~repro.intermittent.kernel.IntermittentFleetKernel`) —
        keep the two in lockstep when touching either.
        """
        k = self._num_exits - 1  # single-exit nets: their only exit
        energy_needed = self._exit_energy[k]
        run = self._engine.run_inference(energy_needed, te, self.storage, deadline=duration)
        if not run.completed:
            columns.append_missed(
                te, MISS_ENERGY, latency_s=run.latency_s, power_cycles=run.power_cycles
            )
            return run.finish_time
        correct, entropy, _ = self._begin_event_inference(k)
        columns.append_processed(
            te,
            exit_index=k,
            first_exit_index=k,
            correct=bool(correct),
            latency_s=run.latency_s,
            energy_mj=run.energy_consumed_mj + run.overhead_energy_mj,
            confidence_entropy=entropy,
            power_cycles=run.power_cycles,
        )
        return run.finish_time
