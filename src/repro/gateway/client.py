"""A small synchronous client for the gateway protocol.

Connects over TCP or a Unix socket, speaks the newline-delimited JSON
protocol (``docs/PROTOCOL.md``), and gives every verb a method.  The
retry loop is what makes the link reliable: a call that times out or
reads an undecodable line re-sends the *same* request id, and the
server's per-session dedup cache guarantees the verb still executes
exactly once — so a chaos-armed connection (``fleet.gateway`` drop /
corrupt faults) converges to the same results as a clean one
(``tests/test_gateway_server.py`` holds it to that).

Usage::

    from repro.gateway import GatewayClient

    with GatewayClient(port=7777) as gw:
        gw.create(scenario="dev-smoke")
        while not gw.advance("dev-smoke", steps=5)["finished"]:
            pass
        aggregate = gw.query("dev-smoke")
"""

from __future__ import annotations

import json
import socket

from repro import errors as _errors
from repro.errors import GatewayError
from repro.gateway.protocol import PROTOCOL_VERSION, encode_line


def _rebuild_error(envelope: dict) -> Exception:
    """Map a wire error envelope back to the closest repro exception."""
    err = envelope.get("error") or {}
    name = err.get("type", "GatewayError")
    message = err.get("message", "gateway request failed")
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = GatewayError
    return cls(message)


class GatewayClient:
    """Sync gateway client; usable as a context manager.

    ``retries`` bounds how many times one call re-sends its id after a
    timeout or a corrupted line before giving up with
    :class:`~repro.errors.GatewayError`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port=None,
        unix_path=None,
        timeout: float = 10.0,
        retries: int = 3,
    ):
        if (port is None) == (unix_path is None):
            raise GatewayError("GatewayClient needs exactly one of port/unix_path")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.timeout = float(timeout)
        self.retries = int(retries)
        self._sock = None
        self._file = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # Connection
    # ------------------------------------------------------------------ #
    def connect(self) -> dict:
        """Open the socket and validate the server greeting."""
        if self._sock is not None:
            raise GatewayError("client is already connected")
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(str(self.unix_path))
        else:
            sock = socket.create_connection(
                (self.host, int(self.port)), timeout=self.timeout
            )
        self._sock = sock
        self._file = sock.makefile("rb")
        greeting = json.loads(self._file.readline().decode("utf-8"))
        if greeting.get("protocol") != PROTOCOL_VERSION:
            self.close()
            raise GatewayError(
                f"server speaks protocol {greeting.get('protocol')!r}; "
                f"this client speaks {PROTOCOL_VERSION}"
            )
        return greeting

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "GatewayClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The wire call
    # ------------------------------------------------------------------ #
    def call(self, verb: str, **params) -> dict:
        """Send one verb; returns the result dict or raises the error.

        Re-sends the same request id on timeout / undecodable response
        (up to ``retries`` times); mismatched-id lines — stale or
        chaos-mangled — are skipped, never treated as the answer.
        """
        if self._sock is None:
            self.connect()
        self._next_id += 1
        request_id = f"c{self._next_id}"
        line = encode_line({"id": request_id, "verb": verb, **params})
        last_error = None
        for _ in range(self.retries + 1):
            try:
                self._sock.sendall(line)
                envelope = self._read_matching(request_id)
            except (socket.timeout, TimeoutError) as exc:
                last_error = exc
                # A timed-out socket file object refuses further reads;
                # rebuild it (any half-read line is garbage anyway and
                # the skip loop below discards its tail).
                self._file.close()
                self._file = self._sock.makefile("rb")
                continue
            if envelope.get("ok"):
                return envelope.get("result", {})
            raise _rebuild_error(envelope)
        raise GatewayError(
            f"gateway call {verb!r} (id {request_id}) failed after "
            f"{self.retries + 1} attempts: {last_error}"
        )

    def _read_matching(self, request_id: str) -> dict:
        """Read lines until one parses and carries ``request_id``."""
        while True:
            raw = self._file.readline()
            if not raw:
                raise GatewayError("server closed the connection")
            try:
                envelope = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # a chaos-mangled line; the timeout triggers a retry
            if isinstance(envelope, dict) and envelope.get("id") == request_id:
                return envelope
            # A stale line for some other id: keep reading.

    # ------------------------------------------------------------------ #
    # Verb conveniences
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        """Round-trip check; returns ``{"pong": true, "protocol": N}``."""
        return self.call("ping")

    def create(self, scenario=None, spec=None, overrides=None, fleet=None) -> dict:
        """Create a live fleet from a scenario name or an inline spec."""
        params: dict = {}
        if scenario is not None:
            params["scenario"] = scenario
        if spec is not None:
            params["spec"] = spec
        if overrides:
            params["overrides"] = dict(overrides)
        if fleet is not None:
            params["fleet"] = fleet
        return self.call("create", **params)

    def submit(self, fleet: str, devices) -> dict:
        """Add a cohort of DeviceSpec dicts to a live fleet."""
        return self.call("submit", fleet=fleet, devices=list(devices))

    def advance(self, fleet: str, steps=None) -> dict:
        """Advance ``fleet`` by up to ``steps`` (``None`` = completion)."""
        return self.call("advance", fleet=fleet, steps=steps)

    def query(self, fleet: str, what: str = "aggregate") -> dict:
        """Query ``progress``/``aggregate``/``percentiles``/``exit_counts``."""
        return self.call("query", fleet=fleet, what=what)

    def checkpoint(self, fleet: str, path: str) -> dict:
        """Seal ``fleet``'s journal to ``path`` atomically."""
        return self.call("checkpoint", fleet=fleet, path=str(path))

    def restore(self, path: str, fleet=None) -> dict:
        """Replay a checkpoint into a fresh live fleet."""
        params: dict = {"path": str(path)}
        if fleet is not None:
            params["fleet"] = fleet
        return self.call("restore", **params)

    def fleets(self) -> dict:
        """Progress for every live fleet on the server."""
        return self.call("fleets")

    def shutdown(self) -> dict:
        """Ask the server to stop (responds, then exits its serve loop)."""
        return self.call("shutdown")
