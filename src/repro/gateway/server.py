"""The asyncio gateway server: a supervisor/actor split over live twins.

One *session supervisor* task runs per client connection: it frames
newline-delimited JSON requests, polls the ``fleet.gateway`` chaos site
once per received message, answers session verbs (``ping``, ``fleets``,
``shutdown``) itself, and routes fleet verbs to the owning fleet's
*actor* over an :class:`asyncio.Queue`.  Each actor task owns exactly
one :class:`~repro.gateway.twin.FleetTwin` and executes its (numpy-
heavy, GIL-releasing) operations serially through the default thread
executor — so per-fleet op order is total regardless of how many
sessions talk to it, which is what keeps twins deterministic under
concurrent traffic.  The message-bus shape follows the SCADA
supervisor/per-device-actor idiom the ROADMAP describes.

Exactly-once under chaos: every response is cached per request id for
the lifetime of the session, so a client that re-sends an id after a
dropped or corrupted line gets the cached envelope and the verb never
executes twice (``tests/test_gateway_server.py`` drills this with an
armed injector).

Observability: ``gateway.sessions`` / ``gateway.sessions.active``,
per-verb ``gateway.requests.<verb>`` counters, and a
``gateway.<verb>`` span per handled request (mirrored to
``span.gateway.advance.s`` histograms) — all through the process
recorder, zero-overhead when off.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.errors import GatewayError
from repro.faults.injector import get_fault_injector
from repro.gateway import checkpoint as ckpt
from repro.gateway import protocol
from repro.gateway.twin import FleetTwin
from repro.obs.recorder import get_recorder
from repro.obs.tracing import span

#: The chaos site polled once per message received by a session.
CHAOS_SITE = "fleet.gateway"
#: Per-session response cache bound (oldest ids evicted first).
DEDUP_CACHE_LIMIT = 1024


class _FleetActor:
    """One task owning one twin; ops arrive over the queue in order."""

    def __init__(self, twin: FleetTwin):
        self.twin = twin
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"gateway-actor-{twin.name}"
        )

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self.queue.get()
            if item is None:
                return
            fn, future = item
            try:
                result = await loop.run_in_executor(None, fn)
            except BaseException as exc:  # ships to the caller, never lost
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)

    async def call(self, fn):
        """Run ``fn`` on this actor; awaits and returns its result."""
        future = asyncio.get_running_loop().create_future()
        await self.queue.put((fn, future))
        return await future

    async def stop(self) -> None:
        await self.queue.put(None)
        await self.task


class GatewayServer:
    """A persistent simulation gateway over TCP or a Unix socket.

    ``port=0`` binds an ephemeral TCP port (read :attr:`port` after
    :meth:`start`); pass ``unix_path`` instead for a Unix socket.  Run
    :meth:`serve_forever` (returns after a ``shutdown`` verb or
    :meth:`stop`), or ``start()``/``stop()`` directly from tests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, unix_path=None):
        self.host = host
        self.port = int(port)
        self.unix_path = unix_path
        self._server = None
        self._actors: dict = {}
        self._stopping = asyncio.Event()
        self._sessions = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting sessions."""
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._session, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._session, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drain every actor, close the socket."""
        self._stopping.set()
        for actor in list(self._actors.values()):
            await actor.stop()
        self._actors.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Start, then block until a ``shutdown`` verb (or :meth:`stop`)."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self.stop()

    # ------------------------------------------------------------------ #
    # Session supervisor
    # ------------------------------------------------------------------ #
    async def _session(self, reader, writer) -> None:
        metrics = get_recorder().metrics
        self._sessions += 1
        if metrics is not None:
            metrics.inc("gateway.sessions")
            metrics.set_gauge("gateway.sessions.active", self._sessions)
        dedup: dict = {}
        writer.write(protocol.encode_line(protocol.greeting()))
        try:
            await writer.drain()
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                faults = get_fault_injector().poll(CHAOS_SITE)
                if any(f.op == "drop" for f in faults):
                    continue  # swallowed: the client times out and retries
                response = await self._respond(line, dedup)
                for fault in faults:
                    if fault.op == "delay":
                        await asyncio.sleep(
                            float(fault.params.get("seconds", 0.05))
                        )
                    elif fault.op == "corrupt":
                        response = _corrupt(response)
                writer.write(response)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        finally:
            self._sessions -= 1
            if metrics is not None:
                metrics.set_gauge("gateway.sessions.active", self._sessions)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _respond(self, line: bytes, dedup: dict) -> bytes:
        """Decode, dedup, execute, and envelope one request line."""
        metrics = get_recorder().metrics
        try:
            message = protocol.decode_line(line)
            request_id, verb = protocol.validate_request(message)
        except GatewayError as exc:
            return protocol.encode_line(protocol.error_response("", exc))
        cached = dedup.get(request_id)
        if cached is not None:
            if metrics is not None:
                metrics.inc("gateway.requests.deduped")
            return cached
        if metrics is not None:
            metrics.inc(f"gateway.requests.{verb}")
        try:
            with span(f"gateway.{verb}"):
                result = await self._execute(verb, message)
            envelope = protocol.ok_response(request_id, result)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            envelope = protocol.error_response(request_id, exc)
        response = protocol.encode_line(envelope)
        if len(dedup) >= DEDUP_CACHE_LIMIT:
            dedup.pop(next(iter(dedup)))
        dedup[request_id] = response
        return response

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #
    def _actor(self, message: dict) -> _FleetActor:
        name = message.get("fleet")
        if not isinstance(name, str) or not name:
            raise GatewayError("this verb needs a 'fleet' name")
        actor = self._actors.get(name)
        if actor is None:
            raise GatewayError(
                f"unknown fleet {name!r}; live: {sorted(self._actors) or '(none)'}"
            )
        return actor

    def _register(self, twin: FleetTwin, name=None) -> _FleetActor:
        name = twin.name if name is None else str(name)
        if name in self._actors:
            raise GatewayError(f"fleet {name!r} already exists")
        twin.name = name
        actor = _FleetActor(twin)
        self._actors[name] = actor
        return actor

    async def _execute(self, verb: str, message: dict) -> dict:
        loop = asyncio.get_running_loop()
        if verb == "ping":
            return {"pong": True, "protocol": protocol.PROTOCOL_VERSION}
        if verb == "fleets":
            return {
                "fleets": [
                    a.twin.progress() for _, a in sorted(self._actors.items())
                ]
            }
        if verb == "shutdown":
            self._stopping.set()
            return {"stopping": True}
        if verb == "create":
            scenario = message.get("scenario")
            spec = message.get("spec")
            if (scenario is None) == (spec is None):
                raise GatewayError("create needs exactly one of scenario/spec")
            overrides = message.get("overrides") or {}
            if scenario is not None:
                twin = await loop.run_in_executor(
                    None, lambda: FleetTwin.from_scenario(scenario, overrides)
                )
            else:
                twin = await loop.run_in_executor(
                    None, lambda: FleetTwin.from_spec(spec)
                )
            actor = self._register(twin, message.get("fleet"))
            return actor.twin.progress()
        if verb == "restore":
            path = message.get("path")
            if not isinstance(path, str) or not path:
                raise GatewayError("restore needs a checkpoint 'path'")
            twin = await loop.run_in_executor(
                None, lambda: ckpt.load_checkpoint(path)
            )
            actor = self._register(twin, message.get("fleet"))
            return actor.twin.progress()
        actor = self._actor(message)
        twin = actor.twin
        if verb == "submit":
            devices = message.get("devices")
            if not isinstance(devices, list):
                raise GatewayError("submit needs a 'devices' list")
            return await actor.call(lambda: twin.submit(devices))
        if verb == "advance":
            steps = message.get("steps")
            return await actor.call(lambda: twin.advance(steps))
        if verb == "query":
            what = message.get("what", "aggregate")
            return await actor.call(lambda: twin.query(what))
        if verb == "checkpoint":
            path = message.get("path")
            if not isinstance(path, str) or not path:
                raise GatewayError("checkpoint needs a 'path'")
            return await actor.call(lambda: ckpt.save_checkpoint(twin, path))
        raise GatewayError(f"verb {verb!r} is not routable")


def _corrupt(response: bytes) -> bytes:
    """Bit-flip one byte mid-line (the injected ``corrupt`` op)."""
    if len(response) < 3:
        return response
    i = len(response) // 2
    return response[:i] + bytes([response[i] ^ 0xFF]) + response[i + 1 :]
