"""Gateway CLI.

    python -m repro.gateway serve [--host H] [--port P | --unix PATH]
        [--chaos PLAN.json] [--metrics-out metrics.json]
        [--trace-out run.jsonl]
    python -m repro.gateway client (--port P | --unix PATH) VERB
        [--params '{"scenario": "dev-smoke"}']

``serve`` runs a :class:`~repro.gateway.server.GatewayServer` in the
foreground until a client sends ``shutdown`` (or SIGINT); it prints the
bound endpoint as the first stdout line (``gateway listening on ...``)
so scripts can scrape an ephemeral port.  ``--chaos`` arms a
:class:`~repro.faults.plan.FaultPlan` on the ``fleet.gateway`` site;
``--metrics-out``/``--trace-out`` enable the process recorder and write
its artifacts on exit — the same observability surface as
``python -m repro.fleet run``.

``client`` sends one verb from the shell and prints the JSON response —
enough for smoke tests and scripting; use
:class:`~repro.gateway.client.GatewayClient` for anything interactive
(see ``examples/gateway_demo.py``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.errors import ReproError
from repro.faults.injector import chaos
from repro.faults.plan import FaultPlan
from repro.gateway.client import GatewayClient
from repro.gateway.protocol import VERBS
from repro.gateway.server import GatewayServer
from repro.obs.recorder import recording


def _serve(args) -> int:
    plan = FaultPlan.from_json(args.chaos) if args.chaos else None
    server = GatewayServer(
        host=args.host, port=args.port, unix_path=args.unix
    )

    async def _run() -> None:
        await server.start()
        endpoint = (
            args.unix if args.unix else f"{server.host}:{server.port}"
        )
        print(f"gateway listening on {endpoint}", flush=True)
        await server.serve_forever()

    want_obs = bool(args.metrics_out or args.trace_out)
    with chaos(plan):
        if want_obs:
            with recording(trace_path=args.trace_out) as rec:
                asyncio.run(_run())
            if args.metrics_out:
                with open(args.metrics_out, "w") as fh:
                    json.dump(rec.to_dict(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"wrote metrics to {args.metrics_out}")
        else:
            asyncio.run(_run())
    return 0


def _client(args) -> int:
    params = json.loads(args.params) if args.params else {}
    client = GatewayClient(
        host=args.host, port=args.port, unix_path=args.unix,
        timeout=args.timeout,
    )
    with client:
        result = client.call(args.verb, **params)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="persistent async simulation gateway",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the gateway server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral, printed on start)")
    serve.add_argument("--unix", default=None, metavar="PATH",
                       help="serve on a Unix socket instead of TCP")
    serve.add_argument("--chaos", default=None, metavar="PLAN.json",
                       help="arm a fault plan (fleet.gateway site)")
    serve.add_argument("--metrics-out", default=None, metavar="PATH")
    serve.add_argument("--trace-out", default=None, metavar="PATH")

    client = sub.add_parser("client", help="send one verb and print the reply")
    client.add_argument("verb", choices=VERBS)
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=None)
    client.add_argument("--unix", default=None, metavar="PATH")
    client.add_argument("--timeout", type=float, default=10.0)
    client.add_argument("--params", default=None, metavar="JSON",
                        help="verb parameters as a JSON object")

    args = parser.parse_args(argv)
    try:
        if args.command == "serve":
            return _serve(args)
        return _client(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
