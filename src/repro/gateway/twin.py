"""Device twins: live fleet state behind the gateway's verbs.

A :class:`FleetTwin` owns the same numpy state columns a one-shot run
uses — each cohort of submitted devices is one
:class:`~repro.sim.batch.BatchedFleetEngine` paused between lockstep
steps (see the engine's ``begin``/``advance``/``finalize`` stepper).
Because per-device randomness is pinned by ``(fleet_seed,
device_index)`` and devices never interact, a twin advanced in any
K-way split of ``advance`` calls — across any pattern of ``submit``
cohorts — finishes with DeviceResults bit-identical to one uninterrupted
:class:`~repro.fleet.runner.FleetRunner` run over the same devices, the
contract ``tests/test_gateway.py`` enforces against the committed
goldens.

The twin also keeps an operation *journal* (create/submit/advance, plain
JSON) which is what a checkpoint stores: restore replays the journal and
determinism makes the replayed state exact, without serializing engine
internals (Q-tables, RNG pools) at all.
"""

from __future__ import annotations

from repro.errors import ConfigError, GatewayError
from repro.fleet.results import FleetResult
from repro.fleet.scenarios import SCENARIOS
from repro.fleet.spec import DeviceSpec, FleetSpec
from repro.sim.batch import (
    BatchedFleetEngine,
    batch_eligible,
    batch_ineligibility,
)


def _require_eligible(devices, start_index: int) -> None:
    """ConfigError naming every batch-ineligible device (gateway twins
    run the lockstep engine only; there is no per-device fallback)."""
    reasons = [
        f"{spec.name}[{start_index + i}]: {batch_ineligibility(spec)}"
        for i, spec in enumerate(devices)
        if not batch_eligible(spec)
    ]
    if reasons:
        raise ConfigError(
            "gateway fleets must be batch-eligible: " + "; ".join(reasons)
        )


class _Cohort:
    """One ``create``/``submit`` batch: an engine over its global indices."""

    __slots__ = ("start", "specs", "engine")

    def __init__(self, start: int, specs, seed: int):
        self.start = start
        self.specs = list(specs)
        tasks = [(start + i, spec, seed) for i, spec in enumerate(self.specs)]
        self.engine = BatchedFleetEngine(tasks)
        self.engine.begin()


class FleetTwin:
    """One live fleet: cohorts of paused engines plus the op journal."""

    def __init__(self, name: str, seed: int):
        self.name = str(name)
        self.seed = int(seed)
        self.cohorts: list = []
        #: Replayable op log; a checkpoint is exactly this plus a seal.
        self.journal: list = [{"op": "create", "name": self.name, "seed": self.seed}]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(cls, scenario: str, overrides=None) -> "FleetTwin":
        """A twin over a registered scenario (overrides as in the CLI)."""
        overrides = dict(overrides or {})
        spec = SCENARIOS.build(scenario, **overrides)
        twin = cls(spec.name, spec.seed)
        twin.journal[-1].update({"scenario": scenario, "overrides": overrides})
        twin._add_cohort([d.to_dict() for d in spec.devices], journal=False)
        return twin

    @classmethod
    def from_spec(cls, spec_dict: dict) -> "FleetTwin":
        """A twin over an inline :class:`~repro.fleet.spec.FleetSpec` dict."""
        spec = FleetSpec.from_dict(spec_dict)
        twin = cls(spec.name, spec.seed)
        twin.journal[-1]["spec"] = spec.to_dict()
        twin._add_cohort([d.to_dict() for d in spec.devices], journal=False)
        return twin

    @classmethod
    def from_create_op(cls, op: dict) -> "FleetTwin":
        """Rebuild from a journal ``create`` op (checkpoint restore)."""
        if "scenario" in op:
            return cls.from_scenario(op["scenario"], op.get("overrides"))
        if "spec" in op:
            return cls.from_spec(op["spec"])
        raise GatewayError("create op needs 'scenario' or 'spec'")

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        """Devices across every cohort (global index space)."""
        return sum(len(c.specs) for c in self.cohorts)

    @property
    def total_steps(self) -> int:
        """Sum of every cohort's full-run step count."""
        return sum(c.engine.total_steps for c in self.cohorts)

    @property
    def steps_done(self) -> int:
        """Lockstep steps executed so far across cohorts."""
        return sum(c.engine.steps_done for c in self.cohorts)

    @property
    def finished(self) -> bool:
        """``True`` once every cohort's engine has finished."""
        return all(c.engine.finished for c in self.cohorts)

    def _add_cohort(self, device_dicts, journal: bool = True) -> dict:
        devices = [DeviceSpec.from_dict(d) for d in device_dicts]
        if not devices:
            raise GatewayError("submit needs at least one device")
        start = self.num_devices
        _require_eligible(devices, start)
        self.cohorts.append(_Cohort(start, devices, self.seed))
        if journal:
            self.journal.append(
                {"op": "submit", "devices": [dict(d) for d in device_dicts]}
            )
        return {
            "added": len(devices),
            "devices": self.num_devices,
            "total_steps": self.total_steps,
        }

    def submit(self, device_dicts) -> dict:
        """Add a cohort of devices to the live fleet (journaled)."""
        return self._add_cohort(device_dicts, journal=True)

    def advance(self, steps=None) -> dict:
        """Advance every unfinished cohort by up to ``steps`` lockstep
        steps (``None`` = to completion); journaled with the per-cohort
        executed counts so a restore replays exactly this slice."""
        executed = []
        for cohort in self.cohorts:
            executed.append(cohort.engine.advance(steps))
        if any(executed):
            self.journal.append({"op": "advance", "executed": executed})
        return {
            "executed": sum(executed),
            "steps_done": self.steps_done,
            "total_steps": self.total_steps,
            "finished": self.finished,
        }

    def _replay_advance(self, op: dict) -> None:
        """Apply a journal ``advance`` op exactly (restore path)."""
        executed = list(op.get("executed", []))
        if len(executed) > len(self.cohorts):
            raise GatewayError(
                f"journal advance names {len(executed)} cohorts but the "
                f"twin has {len(self.cohorts)}"
            )
        for cohort, n in zip(self.cohorts, executed):
            if n:
                ran = cohort.engine.advance(n)
                if ran != n:
                    raise GatewayError(
                        f"journal replay diverged: cohort at {cohort.start} "
                        f"executed {ran} of {n} recorded steps"
                    )

    @classmethod
    def replay(cls, journal) -> "FleetTwin":
        """Rebuild a twin by replaying a journal from its ``create`` op."""
        journal = list(journal)
        if not journal or journal[0].get("op") != "create":
            raise GatewayError("journal must start with a create op")
        twin = cls.from_create_op(journal[0])
        for op in journal[1:]:
            kind = op.get("op")
            if kind == "submit":
                twin._add_cohort(op.get("devices", []), journal=True)
            elif kind == "advance":
                twin._replay_advance(op)
                twin.journal.append(dict(op))
            else:
                raise GatewayError(f"unknown journal op {kind!r}")
        return twin

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def result(self) -> FleetResult:
        """The finished fleet's results, merged across cohorts in global
        device-index order — the same object a one-shot run produces."""
        if not self.finished:
            raise GatewayError(
                f"fleet {self.name!r} is mid-run ({self.steps_done}/"
                f"{self.total_steps} steps); advance it to completion "
                "before querying aggregates"
            )
        devices = []
        for cohort in self.cohorts:
            devices.extend(cohort.engine.finalize())
        return FleetResult(
            fleet_name=self.name, seed=self.seed, devices=devices
        )

    def progress(self) -> dict:
        """Always-available run status (no results required)."""
        return {
            "fleet": self.name,
            "seed": self.seed,
            "devices": self.num_devices,
            "cohorts": len(self.cohorts),
            "steps_done": self.steps_done,
            "total_steps": self.total_steps,
            "finished": self.finished,
        }

    def query(self, what: str = "aggregate") -> dict:
        """Dispatch one ``query`` verb: ``progress`` any time; the result
        reducers (``aggregate``/``percentiles``/``exit_counts``) once
        :attr:`finished`."""
        if what == "progress":
            return self.progress()
        result = self.result()
        if what == "aggregate":
            return result.aggregate()
        if what == "percentiles":
            return {
                "device_iepmj_percentiles": result.device_iepmj_percentiles(),
                "device_latency_percentiles": result.device_latency_percentiles(),
            }
        if what == "exit_counts":
            return {
                "exit_counts": result.exit_counts(),
                "miss_counts": result.miss_counts(),
            }
        raise GatewayError(
            f"unknown query {what!r}; use progress, aggregate, "
            "percentiles, or exit_counts"
        )
