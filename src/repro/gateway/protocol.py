"""Wire protocol for the simulation gateway: newline-delimited JSON.

One request per line, one response per line, stdlib ``json`` only — the
full format, every verb, and the error envelope are documented with
examples in ``docs/PROTOCOL.md`` (the fenced blocks there execute as
doctests in CI, so the documentation cannot drift from this module).

A request is ``{"id": <str>, "verb": <str>, ...params}``; the matching
response is ``{"id": <same>, "ok": true, "result": {...}}`` or
``{"id": <same>, "ok": false, "error": {"type": ..., "message": ...}}``.
Request ids exist for exactly-once semantics under an unreliable link:
the server caches the response per id, so a client that times out (a
dropped message, an injected ``fleet.gateway`` chaos fault) re-sends the
*same* id and receives the cached response without the verb executing
twice.
"""

from __future__ import annotations

import json

from repro.errors import GatewayError

#: Bumped on any incompatible wire change; the server advertises it in
#: the greeting line and clients refuse to speak to a newer major.
PROTOCOL_VERSION = 1

#: Every verb the server routes (``docs/PROTOCOL.md`` documents each).
VERBS = (
    "ping",
    "create",
    "submit",
    "advance",
    "query",
    "checkpoint",
    "restore",
    "fleets",
    "shutdown",
)

#: Verbs handled by the session supervisor itself; everything else is
#: routed to the owning fleet actor's queue.
SESSION_VERBS = ("ping", "fleets", "shutdown")


def encode_line(message: dict) -> bytes:
    """Serialize one protocol message to a newline-terminated JSON line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line; :class:`GatewayError` on anything malformed."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GatewayError(f"undecodable protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise GatewayError(
            f"protocol message must be a JSON object, got {type(message).__name__}"
        )
    return message


def greeting() -> dict:
    """The server's first line on every new connection."""
    return {"server": "repro-gateway", "protocol": PROTOCOL_VERSION}


def ok_response(request_id: str, result: dict) -> dict:
    """A success envelope for ``request_id``."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: str, exc: BaseException) -> dict:
    """An error envelope carrying the exception's type name and message."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def validate_request(message: dict) -> tuple:
    """Check the envelope; returns ``(id, verb)`` or raises GatewayError."""
    request_id = message.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise GatewayError("request needs a non-empty string 'id'")
    verb = message.get("verb")
    if verb not in VERBS:
        raise GatewayError(
            f"unknown verb {verb!r}; supported: {', '.join(VERBS)}"
        )
    return request_id, verb
