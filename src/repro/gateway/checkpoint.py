"""Sealed gateway checkpoints: the twin journal, atomically written.

A checkpoint is *not* a dump of engine internals — it is the twin's
replayable op journal (create/submit/advance with exact executed step
counts) plus a sha256 seal, reusing the campaign store's atomic-write
and checksum machinery.  Restore replays the journal through the same
deterministic engines, so the restored twin's numpy state is
bit-identical to the one that was checkpointed (enforced against the
goldens in ``tests/test_gateway.py``).  The on-disk format is documented
in ``docs/PROTOCOL.md``.
"""

from __future__ import annotations

import json
import os

from repro.campaign.store import atomic_write_json, cell_checksum
from repro.errors import CorruptCellError, GatewayError
from repro.gateway.twin import FleetTwin

#: Stamped into every checkpoint; readers reject other formats.
CHECKPOINT_FORMAT = "repro-gateway-checkpoint"
#: Bumped on any incompatible change to the checkpoint payload.
CHECKPOINT_VERSION = 1


def save_checkpoint(twin: FleetTwin, path: str) -> dict:
    """Atomically write ``twin``'s sealed journal; returns the summary
    (path, digest, journal length) the ``checkpoint`` verb responds with."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "fleet": {"name": twin.name, "seed": twin.seed},
        "steps_done": twin.steps_done,
        "journal": [dict(op) for op in twin.journal],
    }
    digest = cell_checksum(payload)
    payload["integrity"] = {"algo": "sha256", "digest": digest}
    atomic_write_json(path, payload)
    return {
        "path": os.path.abspath(path),
        "digest": digest,
        "journal_ops": len(twin.journal),
        "steps_done": twin.steps_done,
    }


def load_checkpoint(path: str) -> FleetTwin:
    """Verify the seal and replay the journal into a fresh twin.

    Zero-byte, torn, or bit-flipped files raise
    :class:`~repro.errors.CorruptCellError` (the same failure shape the
    campaign store gives damaged cells); a valid file whose journal
    cannot replay raises :class:`~repro.errors.GatewayError`.
    """
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise GatewayError(f"no checkpoint at {path!r}") from None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptCellError(
            f"checkpoint {path!r} is unreadable: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CorruptCellError(
            f"checkpoint {path!r} is not a {CHECKPOINT_FORMAT} file"
        )
    if payload.get("version") != CHECKPOINT_VERSION:
        raise GatewayError(
            f"checkpoint {path!r} has version {payload.get('version')!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    seal = payload.pop("integrity", None)
    if not isinstance(seal, dict) or seal.get("algo") != "sha256":
        raise CorruptCellError(f"checkpoint {path!r} has no sha256 seal")
    digest = cell_checksum(payload)
    if seal.get("digest") != digest:
        raise CorruptCellError(
            f"checkpoint {path!r} failed its checksum: sealed "
            f"{seal.get('digest')!r} != computed {digest!r}"
        )
    return FleetTwin.replay(payload.get("journal", []))
