"""Fleet-as-a-service: a persistent async simulation gateway.

The batch stack runs one-shot sweeps; this package runs the same
engines as a *service*.  A :class:`~repro.gateway.server.GatewayServer`
owns live fleets as device twins — the existing
:class:`~repro.sim.batch.BatchedFleetEngine` numpy columns, paused
between lockstep steps — and serves ``create`` / ``submit`` /
``advance`` / ``query`` / ``checkpoint`` / ``restore`` / ``shutdown``
over newline-delimited JSON (TCP or Unix socket, stdlib asyncio only).

The load-bearing guarantee is determinism: advancing a fleet in any
K-way split of ``advance`` calls, across sessions, checkpoints, and
restores, produces aggregates byte-identical to one uninterrupted
:class:`~repro.fleet.runner.FleetRunner` run — enforced against the
committed goldens in ``tests/test_gateway.py``.

Start here:

* ``docs/PROTOCOL.md`` — the wire protocol, verb by verb.
* ``docs/ARCHITECTURE.md`` — where the gateway sits in the stack.
* ``python -m repro.gateway serve`` / ``examples/gateway_demo.py``.
"""

from repro.gateway.checkpoint import load_checkpoint, save_checkpoint
from repro.gateway.client import GatewayClient
from repro.gateway.protocol import PROTOCOL_VERSION, VERBS
from repro.gateway.server import GatewayServer
from repro.gateway.twin import FleetTwin

__all__ = [
    "PROTOCOL_VERSION",
    "VERBS",
    "FleetTwin",
    "GatewayClient",
    "GatewayServer",
    "load_checkpoint",
    "save_checkpoint",
]
