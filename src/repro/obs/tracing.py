"""Tracing spans and their JSON-lines sink.

A span is a named wall-clock interval::

    with span("fleet.run", fleet="solar-farm-100", devices=32):
        ...

Spans nest: a thread-local stack tags each record with its depth and
parent span name, and every record carries the emitting process id and
thread id, so one JSONL file interleaving several workers/threads can be
reassembled into per-process trees.  When the active recorder also has a
metrics registry, each span mirrors its duration into the
``span.<name>.s`` histogram — timing percentiles for free.

With observability off (the default :data:`~repro.obs.recorder.NULL_RECORDER`),
``span(...)`` yields immediately without touching the clock.

Record schema (one JSON object per line)::

    {"type": "span", "name": ..., "pid": ..., "tid": ..., "depth": ...,
     "parent": ... | null, "ts_unix": ..., "dur_s": ..., "tags": {...}}

Manifests written alongside traces use ``{"type": "manifest", ...}`` —
see :func:`repro.obs.manifest.build_manifest`.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time

from repro.obs.recorder import get_recorder


class TraceWriter:
    """Append-only JSON-lines sink (opened lazily, one record per line)."""

    def __init__(self, path=None, stream=None):
        if (path is None) == (stream is None):
            raise ValueError("TraceWriter needs exactly one of path or stream")
        self.path = None if path is None else os.fspath(path)
        self._stream = stream
        self._owns_stream = stream is None
        self.records_written = 0

    def emit(self, record: dict) -> None:
        """Write one record as a JSON line and flush."""
        if self._stream is None:
            self._stream = open(self.path, "w")
        json.dump(record, self._stream, separators=(",", ":"), sort_keys=True)
        self._stream.write("\n")
        self.records_written += 1

    def flush(self) -> None:
        """Flush the underlying stream if it is still open."""
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        """Close (or hand back) the underlying stream; idempotent."""
        if self._stream is not None:
            if self._owns_stream:
                self._stream.close()
            else:
                self._stream.flush()
            self._stream = None


_STACK = threading.local()


def _span_stack() -> list:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


@contextlib.contextmanager
def span(name: str, **tags):
    """Record one named wall-clock interval on the active recorder.

    No-op (beyond one attribute check) when observability is off.  Tags
    must be JSON-safe scalars; they land verbatim in the trace record.
    """
    rec = get_recorder()
    if rec.trace is None and rec.metrics is None:
        yield
        return
    stack = _span_stack()
    parent = stack[-1] if stack else None
    stack.append(name)
    ts = time.time()
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dur = time.perf_counter() - t0
        stack.pop()
        if rec.metrics is not None:
            rec.metrics.observe(f"span.{name}.s", dur)
        if rec.trace is not None:
            rec.trace.emit(
                {
                    "type": "span",
                    "name": name,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "depth": len(stack),
                    "parent": parent,
                    "ts_unix": round(ts, 6),
                    "dur_s": round(dur, 9),
                    "tags": tags,
                }
            )
