"""repro.obs — zero-overhead-by-default observability for the fleet stack.

Three sinks behind one process-wide recorder:

* **metrics** — counters / gauges / timing histograms that merge across
  multiprocessing workers (:mod:`repro.obs.metrics`);
* **tracing** — nestable wall-clock spans written as JSON lines next to
  a per-run provenance manifest (:mod:`repro.obs.tracing`,
  :mod:`repro.obs.manifest`);
* **profiling** — phase wall-time + hot-loop tallies for the batched
  engines (:mod:`repro.obs.profiler`).

Off by default: the active recorder is :data:`NULL_RECORDER` and every
instrumentation point reduces to an attribute read plus a ``None``
check, keeping simulation results bit-identical and the no-op cost
inside the ≤2% budget gated by ``benchmarks/test_p6_obs.py``.

Turn it on with::

    from repro.obs import recording

    with recording(trace_path="run.jsonl", profile=True) as rec:
        result = FleetRunner(spec).run()
    print(rec.metrics.to_dict())
"""

from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest, write_manifest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import PhaseProfiler, memory_snapshot
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    obs_enabled,
    recording,
    set_recorder,
)
from repro.obs.tracing import TraceWriter, span

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "memory_snapshot",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "get_recorder",
    "obs_enabled",
    "recording",
    "set_recorder",
    "TraceWriter",
    "span",
]
