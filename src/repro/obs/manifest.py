"""Per-run provenance manifests.

Every observability sink — trace JSONL files, metrics payloads, campaign
run directories, committed BENCH_*.json artifacts — embeds the same
manifest so a payload can always be traced back to the exact tree,
interpreter, and host that produced it::

    {"schema": "repro.obs.manifest/1", "git_sha": ..., "git_dirty": ...,
     "python": ..., "numpy": ..., "platform": ..., "hostname": ...,
     "cpu_count": ..., "usable_cpus": ..., "pid": ...,
     "created_unix": ..., "created_utc": ..., "bench_smoke": ...}

The git lookup shells out once per process and is cached; outside a git
checkout both git fields are ``None``.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time

MANIFEST_SCHEMA = "repro.obs.manifest/1"

_GIT: "tuple | None" = None


def _git_state() -> tuple:
    """(sha, dirty) of the tree containing this file; (None, None) if no git."""
    global _GIT
    if _GIT is None:
        sha = dirty = None
        root = os.path.dirname(os.path.abspath(__file__))
        try:
            sha = (
                subprocess.run(
                    ["git", "rev-parse", "HEAD"],
                    cwd=root,
                    capture_output=True,
                    text=True,
                    timeout=10,
                    check=True,
                ).stdout.strip()
                or None
            )
            status = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout
            dirty = bool(status.strip())
        except Exception:
            sha = dirty = None
        _GIT = (sha, dirty)
    return _GIT


def build_manifest(**extra) -> dict:
    """Provenance snapshot of this process; ``extra`` keys ride along."""
    import numpy as np

    sha, dirty = _git_state()
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        usable = os.cpu_count() or 1
    now = time.time()
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "git_sha": sha,
        "git_dirty": dirty,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
        "pid": os.getpid(),
        "created_unix": round(now, 3),
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "bench_smoke": os.environ.get("BENCH_SMOKE", "").lower()
        in {"1", "true", "yes", "on"},
    }
    manifest.update(extra)
    return manifest


def write_manifest(path, **extra) -> dict:
    """Write :func:`build_manifest` to ``path`` as JSON; returns it."""
    manifest = build_manifest(**extra)
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest
