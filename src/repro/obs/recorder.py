"""The process-wide recorder: where instrumentation points report to.

Exactly one recorder is active per process at any time.  The default is
:data:`NULL_RECORDER` — a singleton whose ``metrics`` / ``trace`` /
``profiler`` attributes are all ``None`` — so every instrumentation
point in the fleet/batch/campaign stack reduces to one attribute read
and a ``None`` check.  Observability is strictly *additive*: recorders
never touch simulation state or random streams, so results are
bit-identical with recording on or off (enforced by
``tests/test_obs_integration.py`` against the committed goldens).

Usage::

    from repro.obs import recording

    with recording(trace_path="run.jsonl", profile=True) as rec:
        result = FleetRunner(spec).run()
    print(rec.metrics.to_dict())

Worker processes never inherit the parent's sinks: the fleet dispatcher
passes a flag down and each worker chunk runs under its own fresh
metrics-only recorder, whose wire snapshot ships home with the packed
device results (see ``repro.fleet.runner._run_chunk_packed``).
"""

from __future__ import annotations

import contextlib
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PhaseProfiler


class NullRecorder:
    """Inactive recorder: all sinks absent, all operations no-ops."""

    enabled = False
    metrics = None
    trace = None
    profiler = None

    def close(self) -> None:
        """No-op (nothing to close on the null recorder)."""
        pass


#: The process-default recorder (observability off).
NULL_RECORDER = NullRecorder()


class Recorder:
    """Active observability sinks for one run.

    ``metrics``   — a :class:`~repro.obs.metrics.MetricsRegistry` (on by
                    default; pass ``metrics=False`` for trace-only runs);
    ``trace``     — a :class:`~repro.obs.tracing.TraceWriter` (or a path
                    to open one at), receiving span records as JSON lines;
    ``profiler``  — a :class:`~repro.obs.profiler.PhaseProfiler` when
                    ``profile=True``, fed by the engine hot loops.
    """

    enabled = True

    def __init__(self, metrics: bool = True, trace=None, profile: bool = False):
        from repro.obs.tracing import TraceWriter

        self.metrics = MetricsRegistry() if metrics else None
        if trace is None or isinstance(trace, TraceWriter):
            self.trace = trace
        else:
            self.trace = TraceWriter(trace)
        self.profiler = PhaseProfiler() if profile else None

    def close(self) -> None:
        """Flush and close the owned sinks (the trace stream)."""
        if self.trace is not None:
            self.trace.close()

    def to_dict(self) -> dict:
        """JSON-safe summary of everything this recorder collected."""
        out: dict = {}
        if self.metrics is not None:
            out["metrics"] = self.metrics.to_dict()
        if self.profiler is not None:
            out["profiler"] = self.profiler.to_dict()
        return out


_ACTIVE: "NullRecorder | Recorder" = NULL_RECORDER


def get_recorder():
    """The process-wide active recorder (NULL_RECORDER when off)."""
    return _ACTIVE


def set_recorder(recorder) -> object:
    """Install ``recorder`` (``None`` resets to off); returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = NULL_RECORDER if recorder is None else recorder
    return previous


def obs_enabled() -> bool:
    """Whether an active (non-null) recorder is installed."""
    return _ACTIVE.enabled


@contextlib.contextmanager
def recording(
    recorder: Optional[Recorder] = None,
    metrics: bool = True,
    trace_path=None,
    profile: bool = False,
):
    """Scope a recorder: install on entry, restore (and close) on exit.

    Pass an existing :class:`Recorder` to manage its scope, or use the
    keyword form to build one (``trace_path`` opens a JSONL sink).  The
    recorder built here is closed on exit; a caller-supplied one is not.
    """
    owned = recorder is None
    if owned:
        recorder = Recorder(metrics=metrics, trace=trace_path, profile=profile)
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
        if owned:
            recorder.close()
