"""Phase profiler: wall-clock + counter attribution for engine hot loops.

The batched fleet engine (:mod:`repro.sim.batch`) and the intermittent
kernel (:mod:`repro.intermittent.kernel`) are instrumented against this
class: named **phases** accumulate wall time and call counts, named
**tallies** count hot-loop work items (lockstep passes, device-lane
steps, kernel micro-steps, power-state transitions), and **memory
probes** snapshot peak RSS (and tracemalloc peaks when tracing is
already active).

A profiler only exists when a :class:`~repro.obs.recorder.Recorder` was
built with ``profile=True``; the engines fetch it once per run and guard
every touch with ``if prof is not None`` — the no-op path costs one local
branch, which is what keeps observability-off runs inside the ≤2% budget
asserted in ``benchmarks/test_p6_obs.py``.

Profilers merge like metrics (phases and tallies add, memory peaks max),
so worker-process profiles ship home with the packed result payloads.
"""

from __future__ import annotations

import contextlib
import time


def memory_snapshot() -> dict:
    """Peak-RSS (and tracemalloc, when tracing) snapshot of this process.

    ``ru_maxrss`` is kilobytes on Linux, bytes on macOS; the raw value is
    reported alongside a Linux-normalized ``peak_rss_mb`` since the CI
    and reference containers are Linux.
    """
    out: dict = {}
    try:
        import resource

        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        out["ru_maxrss"] = int(maxrss)
        out["peak_rss_mb"] = round(maxrss / 1024.0, 3)
    except Exception:  # pragma: no cover - non-POSIX fallback
        pass
    try:
        import tracemalloc

        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            out["tracemalloc_current_mb"] = round(current / 1e6, 3)
            out["tracemalloc_peak_mb"] = round(peak / 1e6, 3)
    except Exception:  # pragma: no cover - tracemalloc always importable
        pass
    return out


class PhaseProfiler:
    """Accumulates phase wall times, hot-loop tallies, and memory probes."""

    __slots__ = ("phase_wall", "phase_calls", "counts", "memory")

    def __init__(self):
        self.phase_wall: dict = {}
        self.phase_calls: dict = {}
        self.counts: dict = {}
        self.memory: dict = {}

    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def phase(self, name: str):
        """Context manager accumulating one phase's wall time."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_wall(name, time.perf_counter() - t0)

    def add_wall(self, name: str, wall_s: float, calls: int = 1) -> None:
        """Manual form of :meth:`phase` for loops that cannot re-indent."""
        self.phase_wall[name] = self.phase_wall.get(name, 0.0) + wall_s
        self.phase_calls[name] = self.phase_calls.get(name, 0) + calls

    def tally(self, name: str, n=1) -> None:
        """Count hot-loop work items (passes, lanes, transitions)."""
        self.counts[name] = self.counts.get(name, 0) + n

    def memory_probe(self, label: str) -> dict:
        """Record a named memory snapshot; returns it for convenience."""
        snap = memory_snapshot()
        self.memory[label] = snap
        return snap

    # ------------------------------------------------------------------ #
    def to_wire(self) -> dict:
        """JSON-safe (and picklable) snapshot."""
        return {
            "phases": {
                name: {
                    "wall_s": self.phase_wall[name],
                    "calls": self.phase_calls.get(name, 0),
                }
                for name in sorted(self.phase_wall)
            },
            "counts": {name: self.counts[name] for name in sorted(self.counts)},
            "memory": {
                label: dict(self.memory[label]) for label in sorted(self.memory)
            },
        }

    to_dict = to_wire

    def merge_wire(self, wire: dict) -> None:
        """Fold one worker snapshot in: walls/tallies add, memory maxes."""
        for name, entry in wire.get("phases", {}).items():
            self.add_wall(name, entry.get("wall_s", 0.0), entry.get("calls", 0))
        for name, value in wire.get("counts", {}).items():
            self.tally(name, value)
        for label, snap in wire.get("memory", {}).items():
            mine = self.memory.setdefault(label, {})
            for key, value in snap.items():
                if isinstance(value, (int, float)) and key in mine:
                    mine[key] = max(mine[key], value)
                else:
                    mine.setdefault(key, value)
