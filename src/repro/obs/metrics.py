"""Metrics primitives: counters, gauges, and timing histograms.

A :class:`MetricsRegistry` is a flat name -> instrument map with three
instrument kinds:

* :class:`Counter` — monotonically accumulating totals (``inc``);
* :class:`Gauge` — last-write-wins point-in-time values (``set``);
* :class:`Histogram` — raw observation lists summarized as
  count/mean/p50/p95/max at read time.

Registries are built to **merge**: worker processes run their own
registry and ship it back through the same packed-arrays wire form the
fleet layer uses for device results (:meth:`MetricsRegistry.to_wire` /
:meth:`MetricsRegistry.merge_wire`).  Merge semantics are chosen so that
merging per-worker registries *in dispatch order* reproduces exactly the
registry a serial run would have built from the same per-item
observations:

* counters add;
* histograms concatenate (observation order within a worker is
  preserved, workers splice in dispatch order);
* gauges overwrite (last write wins, like the serial timeline).

Summaries are plain floats computed with ``np.percentile`` on the raw
observations, so a merged registry's summary equals the serial one
bit-for-bit — the property ``tests/test_obs.py`` locks in with
hypothesis.
"""

from __future__ import annotations

import numpy as np


class Counter:
    """Monotonic accumulator (ints stay ints until a float is added)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        """Add ``n`` (default 1) to the counter."""
        self.value += n


class Gauge:
    """Point-in-time value; ``None`` until first set."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value):
        """Set the gauge to ``value`` (last write wins)."""
        self.value = value


class Histogram:
    """Raw observation list with percentile summaries at read time."""

    __slots__ = ("_values",)

    def __init__(self):
        self._values = []

    def observe(self, value):
        """Record one sample."""
        self._values.append(float(value))

    def observe_many(self, values):
        """Record a batch of samples in order."""
        self._values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        """How many samples have been recorded."""
        return len(self._values)

    def values(self) -> np.ndarray:
        """The recorded samples, in order."""
        return np.asarray(self._values, dtype=np.float64)

    def summary(self) -> dict:
        """JSON-safe ``{count, total, mean, min, p50, p95, max}``."""
        if not self._values:
            return {"count": 0}
        arr = self.values()
        p50, p95 = np.percentile(arr, [50.0, 95.0])
        return {
            "count": int(arr.size),
            "total": float(arr.sum()),
            "mean": float(arr.mean()),
            "min": float(arr.min()),
            "p50": float(p50),
            "p95": float(p95),
            "max": float(arr.max()),
        }


class MetricsRegistry:
    """Flat name -> instrument map with cross-process merge support."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    # ------------------------------------------------------------------ #
    # Instruments (created on first touch)
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # ------------------------------------------------------------------ #
    # Conveniences
    # ------------------------------------------------------------------ #
    def inc(self, name: str, n=1) -> None:
        """Increment the named counter by ``n``."""
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value) -> None:
        """Set the named gauge to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        """Record one sample on the named histogram."""
        self.histogram(name).observe(value)

    def observe_many(self, name: str, values) -> None:
        """Record many samples on the named histogram."""
        self.histogram(name).observe_many(values)

    def counter_value(self, name: str, default=0):
        """The counter's current value (0 if never touched)."""
        c = self._counters.get(name)
        return default if c is None else c.value

    def gauge_value(self, name: str, default=None):
        """The gauge's current value (``default`` if never set)."""
        g = self._gauges.get(name)
        return default if g is None else g.value

    def names(self) -> dict:
        """Every registered metric name, sorted."""
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
        }

    # ------------------------------------------------------------------ #
    # Wire form + merge
    # ------------------------------------------------------------------ #
    def to_wire(self) -> dict:
        """Compact picklable snapshot (histograms as numpy columns)."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.values() for k, h in self._histograms.items()},
        }

    def merge_wire(self, wire: dict) -> None:
        """Splice one worker snapshot in (call in dispatch order)."""
        for name, value in wire.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in wire.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, values in wire.get("histograms", {}).items():
            self.histogram(name).observe_many(values)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's wire snapshot into this one."""
        self.merge_wire(other.to_wire())

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-safe summary (sorted names, histogram percentiles)."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].summary() for k in sorted(self._histograms)
            },
        }
