"""Uniform-sampling replay buffer for the DDPG agents."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) tuple."""

    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray
    done: bool


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform minibatch sampling."""

    def __init__(self, capacity: int, rng=None):
        if capacity < 1:
            raise ConfigError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._storage: list = []
        self._cursor = 0
        self._rng = as_generator(rng)

    def __len__(self) -> int:
        return len(self._storage)

    def push(self, transition: Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int):
        """Uniformly sample a batch; returns stacked arrays.

        Raises when fewer than ``batch_size`` transitions are stored.
        """
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if len(self._storage) < batch_size:
            raise ConfigError(
                f"buffer holds {len(self._storage)} < batch_size {batch_size}"
            )
        idx = self._rng.choice(len(self._storage), size=batch_size, replace=False)
        batch = [self._storage[i] for i in idx]
        states = np.stack([t.state for t in batch])
        actions = np.stack([t.action for t in batch])
        rewards = np.array([t.reward for t in batch], dtype=np.float64)
        next_states = np.stack([t.next_state for t in batch])
        dones = np.array([t.done for t in batch], dtype=np.float64)
        return states, actions, rewards, next_states, dones

    def clear(self) -> None:
        self._storage.clear()
        self._cursor = 0
