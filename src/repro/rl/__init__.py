"""RL-based nonuniform compression search (paper Section III-B)."""

from repro.rl.replay_buffer import ReplayBuffer, Transition
from repro.rl.noise import OUNoise, TruncatedNormalNoise
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.env import CompressionObjective, LayerwiseCompressionEnv
from repro.rl.search import (
    NonuniformSearch,
    RandomSearch,
    SearchConfig,
    SearchResult,
)

__all__ = [
    "ReplayBuffer",
    "Transition",
    "OUNoise",
    "TruncatedNormalNoise",
    "DDPGAgent",
    "DDPGConfig",
    "CompressionObjective",
    "LayerwiseCompressionEnv",
    "NonuniformSearch",
    "RandomSearch",
    "SearchConfig",
    "SearchResult",
]
