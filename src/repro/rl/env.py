"""Layer-wise compression environment (paper Section III-B).

Two agents walk the network layer by layer.  At layer ``l`` both observe
the shared state ``O_l`` (Eq. 9) and emit their actions — a pruning rate
and a weight/activation bitwidth pair.  When the last layer is reached the
episode ends: the spec is applied, the compressed network is evaluated for
per-exit accuracy, a fast trace simulation estimates how often each exit
would actually be selected under the EH power trace and event distribution,
and the agents are rewarded per Eq. 10-12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.compressor import CompressedModel, Compressor
from repro.compress.evaluator import evaluate_exits
from repro.compress.finetune import FinetuneConfig, finetune_compressed
from repro.compress.spec import CompressionSpec, LayerCompression
from repro.data.dataset import Dataset
from repro.energy.storage import EnergyStorage
from repro.energy.traces import PowerTrace
from repro.errors import ConfigError
from repro.intermittent.mcu import MCUSpec, MSP432
from repro.nn.flops import profile_network
from repro.nn.network import MultiExitNetwork
from repro.runtime.controller import StaticController
from repro.runtime.policies import GreedyEnergyPolicy
from repro.sim.profiles import InferenceProfile
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator, SimulatorConfig


@dataclass
class ObjectiveResult:
    """Everything the reward (and the caller) needs about one candidate."""

    spec: CompressionSpec
    model: CompressedModel
    accuracies: list            # Acc_i per exit
    exit_fractions: list        # p_i per exit (over ALL events)
    racc: float                 # Eq. 10
    fmodel_flops: float
    size_kb: float
    flops_ok: bool
    size_ok: bool
    rprune: float               # Eq. 11
    rquant: float               # Eq. 12

    @property
    def feasible(self) -> bool:
        return self.flops_ok and self.size_ok


class CompressionObjective:
    """Evaluates a spec under the power trace and event distribution.

    ``trace_aware=False`` replaces the selection probabilities ``p_i`` with
    the uniform ``1/m`` — the ablation showing what the exit-probability
    weighting in Eq. 10 buys.
    """

    def __init__(
        self,
        net: MultiExitNetwork,
        val_data: Dataset,
        trace: PowerTrace,
        events,
        flops_target: float,
        size_target_kb: float,
        mcu: MCUSpec = MSP432,
        storage_capacity_mj: float = 2.0,
        storage_efficiency: float = 0.8,
        lambda_prune: float = 1.0,
        lambda_quant: float = 1.0,
        trace_aware: bool = True,
        calibration_size: int = 64,
        input_shape=(3, 32, 32),
        sim_seed: int = 0,
        train_data: Dataset = None,
        finetune_epochs: int = 0,
        finetune_samples: int = 1500,
        finetune_lr: float = 0.01,
    ):
        if flops_target <= 0 or size_target_kb <= 0:
            raise ConfigError("targets must be positive")
        self.net = net
        self.val_data = val_data
        self.trace = trace
        self.events = np.asarray(events, dtype=np.float64)
        self.flops_target = float(flops_target)
        self.size_target_kb = float(size_target_kb)
        self.mcu = mcu
        self.storage_capacity_mj = float(storage_capacity_mj)
        self.storage_efficiency = float(storage_efficiency)
        self.lambda_prune = float(lambda_prune)
        self.lambda_quant = float(lambda_quant)
        self.trace_aware = bool(trace_aware)
        self.input_shape = tuple(input_shape)
        self.sim_seed = int(sim_seed)
        if finetune_epochs > 0 and train_data is None:
            raise ConfigError("finetune_epochs > 0 requires train_data")
        self.train_data = train_data
        self.finetune_epochs = int(finetune_epochs)
        self.finetune_samples = int(finetune_samples)
        self.finetune_lr = float(finetune_lr)
        self._compressor = Compressor(input_shape=self.input_shape)
        self._calibration_x = val_data.x[:calibration_size]

    def _selection_fractions(self, model: CompressedModel, accuracies) -> list:
        """p_i from a fast profile-mode simulation with the static policy."""
        profile = InferenceProfile(
            name="candidate",
            exit_accuracies=list(accuracies),
            exit_energy_mj=[self.mcu.inference_energy_mj(f) for f in model.exit_flops],
            exit_flops=[float(f) for f in model.exit_flops],
            incremental_energy_mj=[
                self.mcu.inference_energy_mj(f) for f in model.incremental_exit_flops()
            ],
            incremental_flops=[float(f) for f in model.incremental_exit_flops()],
        )
        storage = EnergyStorage(
            self.storage_capacity_mj,
            self.storage_efficiency,
            initial_mj=self.storage_capacity_mj / 2,
        )
        sim = Simulator(
            self.trace,
            profile,
            StaticController(GreedyEnergyPolicy()),
            mcu=self.mcu,
            storage=storage,
            config=SimulatorConfig(mode="profile", seed=self.sim_seed),
        )
        result: SimulationResult = sim.run(self.events)
        return result.exit_fractions(profile.num_exits)

    def evaluate(self, spec: CompressionSpec) -> ObjectiveResult:
        """Full evaluation of one candidate spec (Eq. 10-12).

        When ``finetune_epochs > 0`` the candidate gets a short
        quantization/pruning-aware fine-tune before measurement — at MCU
        compression ratios the zero-shot accuracy of every candidate is
        near chance, so a brief adaptation is what makes the reward signal
        informative (the HAQ recipe the paper builds on).
        """
        model = self._compressor.apply(self.net, spec, calibration_x=self._calibration_x)
        if self.finetune_epochs > 0:
            n = min(self.finetune_samples, len(self.train_data))
            finetune_compressed(
                model,
                self.train_data.x[:n],
                self.train_data.y[:n],
                FinetuneConfig(epochs=self.finetune_epochs, lr=self.finetune_lr, seed=0),
            )
        evaluation = evaluate_exits(
            model, self.val_data, energy_per_mflop_mj=self.mcu.energy_per_mflop_mj
        )
        accuracies = evaluation.accuracies
        if self.trace_aware:
            fractions = self._selection_fractions(model, accuracies)
        else:
            fractions = [1.0 / len(accuracies)] * len(accuracies)
        racc = float(sum(p * a for p, a in zip(fractions, accuracies)))
        flops_ok = model.fmodel_flops <= self.flops_target
        size_ok = model.model_size_kb <= self.size_target_kb
        rprune = self.lambda_prune * racc if flops_ok else -self.lambda_prune
        rquant = self.lambda_quant * racc if size_ok else -self.lambda_quant
        return ObjectiveResult(
            spec=spec,
            model=model,
            accuracies=list(accuracies),
            exit_fractions=list(fractions),
            racc=racc,
            fmodel_flops=model.fmodel_flops,
            size_kb=model.model_size_kb,
            flops_ok=flops_ok,
            size_ok=size_ok,
            rprune=float(rprune),
            rquant=float(rquant),
        )


#: Dimensionality of the shared observation O_l (Eq. 9).
OBSERVATION_DIM = 12


@dataclass
class _LayerInfo:
    name: str
    flops: int
    weights: int
    is_conv: bool
    cin: int
    cout: int


class LayerwiseCompressionEnv:
    """Steps two agents through the network's weighted layers."""

    def __init__(
        self,
        objective: CompressionObjective,
        alpha_bounds=(0.05, 1.0),
        alpha_step: float = 0.05,
        weight_bits_bounds=(1, 8),
        act_bits_bounds=(1, 8),
    ):
        self.objective = objective
        if not 0.0 < alpha_bounds[0] <= alpha_bounds[1] <= 1.0:
            raise ConfigError("invalid alpha bounds")
        if alpha_step <= 0:
            raise ConfigError("alpha_step must be positive")
        self.alpha_bounds = (float(alpha_bounds[0]), float(alpha_bounds[1]))
        self.alpha_step = float(alpha_step)
        self.weight_bits_bounds = (int(weight_bits_bounds[0]), int(weight_bits_bounds[1]))
        self.act_bits_bounds = (int(act_bits_bounds[0]), int(act_bits_bounds[1]))
        profile = profile_network(objective.net, objective.input_shape)
        ordered = [ly.name for ly in objective.net.weighted_layers()]
        self.layers = [
            _LayerInfo(
                name=lp.name,
                flops=lp.flops,
                weights=lp.weight_count,
                is_conv=(lp.kind == "conv"),
                cin=lp.in_channels,
                cout=lp.out_channels,
            )
            for lp in sorted(profile.layers, key=lambda lp: ordered.index(lp.name))
        ]
        self.total_flops = float(sum(ly.flops for ly in self.layers))
        self.total_weights = float(sum(ly.weights for ly in self.layers))
        self._max_cin = max(ly.cin for ly in self.layers)
        self._max_cout = max(ly.cout for ly in self.layers)
        self._max_weights = max(ly.weights for ly in self.layers)
        self._reset_state()

    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def _reset_state(self) -> None:
        self._index = 0
        self._choices: list = []          # (alpha, bw, ba) per layer
        self._flops_reduced = 0.0
        self._size_reduced_bits = 0.0

    def reset(self) -> np.ndarray:
        """Start a new episode; returns O_0."""
        self._reset_state()
        return self.observation()

    # ------------------------------------------------------------------ #
    def map_alpha(self, action: float) -> float:
        """Map an action in [0, 1] to a grid-snapped preserve ratio."""
        lo, hi = self.alpha_bounds
        alpha = lo + float(np.clip(action, 0.0, 1.0)) * (hi - lo)
        snapped = round(alpha / self.alpha_step) * self.alpha_step
        return float(min(hi, max(lo, snapped)))

    def map_bits(self, action: float, bounds) -> int:
        """Map an action in [0, 1] to an integer bitwidth."""
        lo, hi = bounds
        return int(round(lo + float(np.clip(action, 0.0, 1.0)) * (hi - lo)))

    def observation(self) -> np.ndarray:
        """O_l per Eq. 9, all entries normalized to [0, 1]."""
        i = self._index
        info = self.layers[min(i, self.num_layers - 1)]
        if self._choices:
            prev_alpha, prev_bw, prev_ba = self._choices[-1]
        else:
            prev_alpha, prev_bw, prev_ba = 1.0, 8, 8
        flops_remaining = sum(ly.flops for ly in self.layers[i:])
        size_remaining = sum(ly.weights for ly in self.layers[i:]) * 32.0
        return np.array(
            [
                i / max(1, self.num_layers - 1),
                prev_alpha,
                prev_bw / 8.0,
                prev_ba / 8.0,
                self._flops_reduced / self.total_flops,
                flops_remaining / self.total_flops,
                self._size_reduced_bits / (self.total_weights * 32.0),
                size_remaining / (self.total_weights * 32.0),
                1.0 if info.is_conv else 0.0,
                info.cin / self._max_cin,
                info.cout / self._max_cout,
                info.weights / self._max_weights,
            ],
            dtype=np.float64,
        )

    def step(self, prune_action, quant_action):
        """Apply both agents' actions to the current layer.

        ``prune_action`` is a scalar/1-vector in [0, 1]; ``quant_action``
        is a 2-vector (weight bits, activation bits).  Returns
        ``(next_observation, done)``.
        """
        if self._index >= self.num_layers:
            raise ConfigError("episode already finished; call reset()")
        prune_action = np.atleast_1d(np.asarray(prune_action, dtype=np.float64))
        quant_action = np.atleast_1d(np.asarray(quant_action, dtype=np.float64))
        if quant_action.size != 2:
            raise ConfigError("quant agent must emit 2 actions (b^w, b^a)")
        alpha = self.map_alpha(prune_action[0])
        bw = self.map_bits(quant_action[0], self.weight_bits_bounds)
        ba = self.map_bits(quant_action[1], self.act_bits_bounds)
        info = self.layers[self._index]
        # Running first-order estimates for the observation only; the exact
        # accounting happens in the Compressor at episode end.
        self._flops_reduced += info.flops * (1.0 - alpha)
        self._size_reduced_bits += info.weights * (32.0 - alpha * bw)
        self._choices.append((alpha, bw, ba))
        self._index += 1
        done = self._index >= self.num_layers
        return self.observation(), done

    def build_spec(self) -> CompressionSpec:
        """Spec from the episode's choices (requires a finished episode)."""
        if self._index < self.num_layers:
            raise ConfigError("episode not finished")
        return CompressionSpec(
            {
                info.name: LayerCompression(alpha, bw, ba)
                for info, (alpha, bw, ba) in zip(self.layers, self._choices)
            }
        )

    def finalize(self) -> ObjectiveResult:
        """Evaluate the finished episode's spec (Eq. 10-12)."""
        return self.objective.evaluate(self.build_spec())
