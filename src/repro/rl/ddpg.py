"""Deep Deterministic Policy Gradient (Lillicrap et al. [16]) in numpy.

The paper's compression search uses two DDPG agents (one for pruning rates,
one for bitwidths) exploring a continuous action space "because fine-grained
pruning rate and quantization bitwidth need a large number of discrete
actions to represent".  Actor outputs are squashed to [0, 1] by a sigmoid
and mapped to physical knobs by the environment.

Both actor and critic are small MLPs built from :mod:`repro.nn` layers, so
the whole search runs without any external autograd framework.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import Linear, ReLU, Sigmoid
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.rl.noise import TruncatedNormalNoise
from repro.rl.replay_buffer import ReplayBuffer, Transition
from repro.utils.rng import spawn


@dataclass
class DDPGConfig:
    """Hyper-parameters of one DDPG agent."""

    hidden_sizes: tuple = (64, 64)
    actor_lr: float = 1e-3
    critic_lr: float = 2e-3
    gamma: float = 1.0          # episodic reward arrives at the end (Eq. 13)
    tau: float = 0.01           # soft target-update rate
    batch_size: int = 64
    buffer_capacity: int = 20_000
    updates_per_step: int = 1
    warmup: int = 200           # transitions before learning starts
    noise_sigma: float = 0.35
    noise_decay: float = 0.99
    noise_sigma_min: float = 0.02

    def __post_init__(self):
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigError("gamma must be in [0, 1]")
        if not 0.0 < self.tau <= 1.0:
            raise ConfigError("tau must be in (0, 1]")


def _mlp(sizes, final_sigmoid: bool, prefix: str, rng) -> Sequential:
    layers = []
    rngs = iter(spawn(rng, len(sizes) - 1))
    for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        layers.append(Linear(n_in, n_out, name=f"{prefix}.fc{i}", rng=next(rngs)))
        if i < len(sizes) - 2:
            layers.append(ReLU())
    if final_sigmoid:
        layers.append(Sigmoid())
    return Sequential(layers, name=prefix)


def _soft_update(target: Sequential, source: Sequential, tau: float) -> None:
    for pt, ps in zip(target.parameters(), source.parameters()):
        pt.data *= 1.0 - tau
        pt.data += tau * ps.data


class DDPGAgent:
    """One actor-critic pair with target networks and a replay buffer."""

    def __init__(self, state_dim: int, action_dim: int, config: DDPGConfig = None, rng=None):
        if state_dim < 1 or action_dim < 1:
            raise ConfigError("state and action dims must be >= 1")
        self.state_dim = int(state_dim)
        self.action_dim = int(action_dim)
        self.config = config or DDPGConfig()
        actor_rng, critic_rng, buf_rng, noise_rng, self._rng = spawn(rng, 5)
        h = list(self.config.hidden_sizes)
        self.actor = _mlp([state_dim] + h + [action_dim], True, "actor", actor_rng)
        self.critic = _mlp([state_dim + action_dim] + h + [1], False, "critic", critic_rng)
        self.target_actor = copy.deepcopy(self.actor)
        self.target_critic = copy.deepcopy(self.critic)
        self._actor_opt = Adam(self.actor.parameters(), lr=self.config.actor_lr)
        self._critic_opt = Adam(self.critic.parameters(), lr=self.config.critic_lr)
        self.buffer = ReplayBuffer(self.config.buffer_capacity, rng=buf_rng)
        self.noise = TruncatedNormalNoise(
            action_dim,
            sigma=self.config.noise_sigma,
            decay=self.config.noise_decay,
            sigma_min=self.config.noise_sigma_min,
            rng=noise_rng,
        )

    # ------------------------------------------------------------------ #
    def act(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        """Action in [0, 1]^A for one state vector."""
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        action = self.actor.forward(state, train=False)[0]
        if explore:
            action = action + self.noise.sample()
        return np.clip(action, 0.0, 1.0)

    def remember(
        self, state, action, reward: float, next_state, done: bool
    ) -> None:
        self.buffer.push(
            Transition(
                np.asarray(state, dtype=np.float64),
                np.asarray(action, dtype=np.float64),
                float(reward),
                np.asarray(next_state, dtype=np.float64),
                bool(done),
            )
        )

    # ------------------------------------------------------------------ #
    def update(self) -> dict:
        """One (or more) gradient steps on critic and actor.

        Returns the last step's losses; empty dict before warmup.
        """
        cfg = self.config
        if len(self.buffer) < max(cfg.batch_size, cfg.warmup):
            return {}
        stats: dict = {}
        for _ in range(cfg.updates_per_step):
            states, actions, rewards, next_states, dones = self.buffer.sample(cfg.batch_size)
            # ---- critic: regress onto the bootstrapped target (Eq. 13/14)
            next_actions = self.target_actor.forward(next_states, train=False)
            next_q = self.target_critic.forward(
                np.concatenate([next_states, next_actions], axis=1), train=False
            )[:, 0]
            targets = rewards + cfg.gamma * (1.0 - dones) * next_q
            self._critic_opt.zero_grad()
            q = self.critic.forward(np.concatenate([states, actions], axis=1), train=True)[:, 0]
            critic_loss = float(np.mean((q - targets) ** 2))
            dq = (2.0 * (q - targets) / len(q))[:, None]
            self.critic.backward(dq)
            self._critic_opt.step()
            # ---- actor: ascend dQ/da through the policy (Eq. 15)
            self._actor_opt.zero_grad()
            policy_actions = self.actor.forward(states, train=True)
            self.critic.zero_grad()
            q_pi = self.critic.forward(
                np.concatenate([states, policy_actions], axis=1), train=True
            )
            dinput = self.critic.backward(-np.ones_like(q_pi) / len(q_pi))
            self.critic.zero_grad()  # discard critic grads from this pass
            self.actor.backward(dinput[:, self.state_dim:])
            self._actor_opt.step()
            _soft_update(self.target_actor, self.actor, cfg.tau)
            _soft_update(self.target_critic, self.critic, cfg.tau)
            stats = {"critic_loss": critic_loss, "q_mean": float(np.mean(q))}
        return stats

    def end_episode(self) -> None:
        """Anneal exploration noise (called once per search episode)."""
        self.noise.end_episode()
