"""Search drivers: two-agent DDPG search and a random-search baseline.

The DDPG search follows the paper (and AMC/HAQ): both agents act at every
layer; the episode's final reward (Eq. 11/12, one reward per agent) is
assigned to all of that episode's transitions, with ``done`` on the last.
The best *feasible* spec seen anywhere during exploration is returned —
the search artifact is the spec, not the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compress.spec import CompressionSpec
from repro.errors import ConfigError
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.env import OBSERVATION_DIM, LayerwiseCompressionEnv, ObjectiveResult
from repro.utils.rng import as_generator, spawn


@dataclass
class SearchConfig:
    """Knobs of the nonuniform-compression search."""

    episodes: int = 60
    seed: int = 0
    ddpg: DDPGConfig = field(default_factory=DDPGConfig)
    verbose: bool = False


@dataclass
class EpisodeLog:
    """Per-episode trace of the search."""

    episode: int
    racc: float
    rprune: float
    rquant: float
    fmodel_flops: float
    size_kb: float
    feasible: bool
    accuracies: list
    exit_fractions: list


@dataclass
class SearchResult:
    """Outcome of a search run."""

    best: ObjectiveResult            # best feasible candidate (by Racc)
    history: list                    # EpisodeLog per episode
    episodes: int

    @property
    def best_spec(self) -> CompressionSpec:
        return self.best.spec

    def racc_curve(self) -> list:
        return [h.racc for h in self.history]


def _better(candidate: ObjectiveResult, incumbent: ObjectiveResult) -> bool:
    """Feasibility first, then Racc; infeasible compared by Racc too."""
    if incumbent is None:
        return True
    if candidate.feasible != incumbent.feasible:
        return candidate.feasible
    return candidate.racc > incumbent.racc


class NonuniformSearch:
    """The paper's two-agent RL search over pruning rates and bitwidths.

    ``warm_start_specs`` optionally seeds the very first episodes with
    known-reasonable compression specs (e.g. a hand profile in the Fig. 4
    layout): their trajectories are replayed through the environment, so
    the agents' replay buffers start with informative transitions and the
    best-candidate tracker includes them.  Exploration then proceeds
    normally and can improve on the seeds.
    """

    def __init__(
        self,
        env: LayerwiseCompressionEnv,
        config: SearchConfig = None,
        warm_start_specs=None,
    ):
        self.env = env
        self.config = config or SearchConfig()
        self.warm_start_specs = list(warm_start_specs or [])
        prune_rng, quant_rng = spawn(self.config.seed, 2)
        self.prune_agent = DDPGAgent(OBSERVATION_DIM, 1, self.config.ddpg, rng=prune_rng)
        self.quant_agent = DDPGAgent(OBSERVATION_DIM, 2, self.config.ddpg, rng=quant_rng)

    def _actions_for_spec(self, spec: CompressionSpec):
        """Invert the env's action mapping for one spec (for replaying)."""
        env = self.env
        alpha_lo, alpha_hi = env.alpha_bounds
        w_lo, w_hi = env.weight_bits_bounds
        a_lo, a_hi = env.act_bits_bounds
        actions = []
        for info in env.layers:
            lc = spec[info.name]
            pa = (lc.preserve_ratio - alpha_lo) / max(1e-9, alpha_hi - alpha_lo)
            qa_w = (lc.weight_bits - w_lo) / max(1e-9, w_hi - w_lo)
            qa_a = (lc.act_bits - a_lo) / max(1e-9, a_hi - a_lo)
            actions.append((np.array([pa]), np.array([qa_w, qa_a])))
        return actions

    def _play_episode(self, fixed_actions=None):
        """One episode; ``fixed_actions`` replays a given trajectory."""
        obs = self.env.reset()
        steps = []  # (obs, prune_action, quant_action, next_obs, done)
        done = False
        index = 0
        while not done:
            if fixed_actions is not None:
                prune_action, quant_action = fixed_actions[index]
            else:
                prune_action = self.prune_agent.act(obs)
                quant_action = self.quant_agent.act(obs)
            next_obs, done = self.env.step(prune_action, quant_action)
            steps.append((obs, prune_action, quant_action, next_obs, done))
            obs = next_obs
            index += 1
        return steps, self.env.finalize()

    def run(self) -> SearchResult:
        """Explore for ``config.episodes`` episodes; returns the best spec."""
        best: ObjectiveResult = None
        history: list = []
        schedule = [("warm", spec) for spec in self.warm_start_specs]
        schedule += [("explore", None)] * self.config.episodes
        for episode, (kind, seed_spec) in enumerate(schedule):
            fixed = self._actions_for_spec(seed_spec) if kind == "warm" else None
            steps, result = self._play_episode(fixed)
            # Episodic reward on every transition (AMC-style), done on last.
            for step_obs, pa, qa, step_next, step_done in steps:
                self.prune_agent.remember(step_obs, pa, result.rprune, step_next, step_done)
                self.quant_agent.remember(step_obs, qa, result.rquant, step_next, step_done)
                self.prune_agent.update()
                self.quant_agent.update()
            self.prune_agent.end_episode()
            self.quant_agent.end_episode()
            if _better(result, best):
                best = result
            history.append(
                EpisodeLog(
                    episode=episode,
                    racc=result.racc,
                    rprune=result.rprune,
                    rquant=result.rquant,
                    fmodel_flops=result.fmodel_flops,
                    size_kb=result.size_kb,
                    feasible=result.feasible,
                    accuracies=result.accuracies,
                    exit_fractions=result.exit_fractions,
                )
            )
            if self.config.verbose:
                print(
                    f"episode {episode:3d}: racc={result.racc:.3f} "
                    f"flops={result.fmodel_flops / 1e6:.3f}M size={result.size_kb:.1f}KB "
                    f"feasible={result.feasible}"
                )
        if best is None:
            raise ConfigError("search ran zero episodes")
        return SearchResult(best=best, history=history, episodes=len(schedule))


class RandomSearch:
    """Uniform random sampling over the same action space (ablation baseline)."""

    def __init__(self, env: LayerwiseCompressionEnv, episodes: int = 60, seed=0):
        self.env = env
        self.episodes = int(episodes)
        self._rng = as_generator(seed)

    def run(self) -> SearchResult:
        best: ObjectiveResult = None
        history: list = []
        for episode in range(self.episodes):
            self.env.reset()
            done = False
            while not done:
                _, done = self.env.step(
                    self._rng.random(1), self._rng.random(2)
                )
            result = self.env.finalize()
            if _better(result, best):
                best = result
            history.append(
                EpisodeLog(
                    episode=episode,
                    racc=result.racc,
                    rprune=result.rprune,
                    rquant=result.rquant,
                    fmodel_flops=result.fmodel_flops,
                    size_kb=result.size_kb,
                    feasible=result.feasible,
                    accuracies=result.accuracies,
                    exit_fractions=result.exit_fractions,
                )
            )
        return SearchResult(best=best, history=history, episodes=self.episodes)
