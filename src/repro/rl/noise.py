"""Exploration noise for continuous-action agents."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_generator


class OUNoise:
    """Ornstein-Uhlenbeck noise (the classic DDPG exploration process)."""

    def __init__(self, dim: int, theta: float = 0.15, sigma: float = 0.3, rng=None):
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.dim = int(dim)
        self.theta = float(theta)
        self.sigma = float(sigma)
        self._rng = as_generator(rng)
        self.state = np.zeros(self.dim)

    def reset(self) -> None:
        self.state = np.zeros(self.dim)

    def sample(self) -> np.ndarray:
        self.state = (
            self.state
            - self.theta * self.state
            + self.sigma * self._rng.normal(size=self.dim)
        )
        return self.state.copy()


class TruncatedNormalNoise:
    """Decaying i.i.d. Gaussian noise (HAQ/AMC-style exploration).

    ``decay`` multiplies sigma once per episode via :meth:`end_episode`,
    annealing exploration as the search converges.
    """

    def __init__(self, dim: int, sigma: float = 0.35, decay: float = 0.99, sigma_min: float = 0.02, rng=None):
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.dim = int(dim)
        self.sigma = float(sigma)
        self.decay = float(decay)
        self.sigma_min = float(sigma_min)
        self._rng = as_generator(rng)

    def reset(self) -> None:  # per-episode state: none
        pass

    def sample(self) -> np.ndarray:
        return self._rng.normal(0.0, self.sigma, size=self.dim)

    def end_episode(self) -> None:
        self.sigma = max(self.sigma_min, self.sigma * self.decay)
