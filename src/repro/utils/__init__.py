"""Shared low-level helpers: seeded RNG plumbing and numerics."""

from repro.utils.rng import as_generator, spawn, seed_sequence
from repro.utils.mathx import (
    softmax,
    log_softmax,
    entropy,
    normalized_entropy,
    clamp,
    one_hot,
    moving_average,
)

__all__ = [
    "as_generator",
    "spawn",
    "seed_sequence",
    "softmax",
    "log_softmax",
    "entropy",
    "normalized_entropy",
    "clamp",
    "one_hot",
    "moving_average",
]
