"""Numerically careful math helpers shared across the library."""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def entropy(probs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shannon entropy (nats) of a probability vector along ``axis``."""
    p = np.clip(probs, _EPS, 1.0)
    return -np.sum(p * np.log(p), axis=axis)


def normalized_entropy(probs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Entropy divided by ``log(K)`` so the result lies in ``[0, 1]``.

    This is the confidence measure used by the runtime incremental-inference
    decision: 0 means a one-hot (fully confident) distribution, 1 means
    uniform (no information).
    """
    k = probs.shape[axis]
    if k <= 1:
        return np.zeros(np.sum(probs, axis=axis).shape)
    return entropy(probs, axis=axis) / np.log(k)


def clamp(x, lo, hi):
    """Truncate ``x`` into ``[lo, hi]`` (paper Eq. 3's ``clamp``)."""
    return np.minimum(np.maximum(x, lo), hi)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels as one-hot rows."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("label out of range for num_classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def moving_average(values, window: int) -> np.ndarray:
    """Trailing moving average with a ramp-up for the first ``window`` items."""
    values = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ValueError("window must be positive")
    if values.size == 0:
        return values
    cumsum = np.cumsum(values)
    out = np.empty_like(values)
    for i in range(values.size):
        lo = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out
