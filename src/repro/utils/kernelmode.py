"""Kernel-mode selection for the batched hot loops.

The batched fleet engine has two implementations of its inner loops —
the always-available pure-numpy lanes and optional numba ``@njit``
kernels (:mod:`repro.intermittent.compiled`, :mod:`repro.sim.compiled`).
Both are bit-identical to the scalar reference; the compiled form trades
an import-time JIT warmup for horizon-free fused runs.

Selection is driven by the ``REPRO_KERNEL`` environment variable:

``numpy`` (or unset)
    the pure-numpy lanes — no optional dependencies;
``compiled``
    the numba kernels when numba imports cleanly, otherwise a *named*
    fallback to numpy (``repro fleet --explain`` prints the reason).

numba is deliberately not a declared dependency: :func:`numba_status`
probes for it lazily exactly once per process.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError

#: Environment variable holding the requested kernel mode.
KERNEL_ENV = "REPRO_KERNEL"

#: Recognised spellings, in preference order.
KERNEL_MODES = ("numpy", "compiled")

_NUMBA_STATUS: tuple[bool, str] | None = None


def numba_status() -> tuple[bool, str]:
    """``(available, detail)`` for the optional numba dependency.

    Probed once per process: importing numba is expensive (and may fail
    in partial installs), so the result — including the failure text —
    is cached for every later caller.
    """
    global _NUMBA_STATUS
    if _NUMBA_STATUS is None:
        try:
            import numba

            _NUMBA_STATUS = (True, f"numba {numba.__version__}")
        except Exception as exc:  # pragma: no cover - env-specific
            _NUMBA_STATUS = (False, f"numba unavailable ({exc!r})")
    return _NUMBA_STATUS


def requested_kernel_mode() -> str:
    """The validated ``REPRO_KERNEL`` request (default ``numpy``).

    Raises :class:`~repro.errors.ConfigError` on unrecognised spellings
    so a typo fails loudly instead of silently running the slow path.
    """
    raw = os.environ.get(KERNEL_ENV, "").strip().lower()
    if not raw:
        return "numpy"
    if raw not in KERNEL_MODES:
        raise ConfigError(
            f"{KERNEL_ENV}={raw!r} is not a kernel mode; "
            f"expected one of {', '.join(KERNEL_MODES)}"
        )
    return raw


def resolve_kernel_mode() -> tuple[str, str]:
    """``(effective_mode, detail)`` after applying the numba fallback.

    ``compiled`` resolves to ``numpy`` when numba is missing — the
    always-available lanes keep the run green — and ``detail`` names
    what happened so ``--explain`` and the obs metrics stay truthful.
    """
    mode = requested_kernel_mode()
    if mode == "compiled":
        available, detail = numba_status()
        if not available:
            return "numpy", f"compiled requested but {detail}; using numpy"
        return "compiled", detail
    return "numpy", "pure-numpy lanes (default)"
