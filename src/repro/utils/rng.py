"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or
a :class:`numpy.random.Generator`.  Funnelling both through
:func:`as_generator` keeps experiments reproducible bit-for-bit while still
letting callers share one generator across components when they want
coupled randomness.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so state is shared).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def seed_sequence(seed=None) -> np.random.SeedSequence:
    """Build a :class:`numpy.random.SeedSequence` from a seed-like value."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(seed)
    raise TypeError(f"cannot build a SeedSequence from {type(seed).__name__}")


def spawn(seed, n: int) -> list:
    """Derive ``n`` independent generators from one seed-like value.

    Used when an experiment needs decoupled random streams (e.g. data
    generation vs. weight init vs. exploration noise) that are all pinned
    by a single top-level seed.
    """
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        children = seed.bit_generator.seed_seq.spawn(n)
    else:
        children = seed_sequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]


class PooledDraws:
    """Batched scalar draws from one :class:`~numpy.random.Generator`.

    Event-driven simulation consumes random variates one at a time, where
    numpy's per-call Generator dispatch overhead dominates the actual
    sampling.  A pool pre-draws blocks per distribution and hands out plain
    Python floats/ints; the realized stream is still fully deterministic
    given the generator's seed and the call sequence (pools refill in
    call order), it is just a *different* deterministic stream than
    scalar-by-scalar draws from the same seed.
    """

    __slots__ = ("_rng", "_block", "_pools")

    def __init__(self, rng=None, block: int = 256):
        if block < 1:
            raise ValueError("block must be >= 1")
        self._rng = as_generator(rng)
        self._block = int(block)
        self._pools: dict = {}

    def _next(self, key, sampler) -> float:
        pool = self._pools.get(key)
        if pool is None or pool[1] >= len(pool[0]):
            pool = [sampler(self._block).tolist(), 0]
            self._pools[key] = pool
        value = pool[0][pool[1]]
        pool[1] += 1
        return value

    def random(self) -> float:
        """One uniform [0, 1) draw."""
        return self._next("random", lambda n: self._rng.random(n))

    def integers(self, high: int) -> int:
        """One integer draw from ``[0, high)``."""
        return self._next(
            ("integers", high), lambda n: self._rng.integers(high, size=n)
        )

    def beta(self, a: float, b: float) -> float:
        """One Beta(a, b) draw."""
        return self._next(("beta", a, b), lambda n: self._rng.beta(a, b, size=n))


def shuffled_indices(n: int, rng) -> np.ndarray:
    """Return a permutation of ``range(n)`` drawn from ``rng``."""
    gen = as_generator(rng)
    return gen.permutation(n)


def batches(n: int, batch_size: int, rng=None) -> Iterable[np.ndarray]:
    """Yield index batches covering ``range(n)``; shuffled when rng given."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = shuffled_indices(n, rng) if rng is not None else np.arange(n)
    for start in range(0, n, batch_size):
        yield order[start:start + batch_size]
