"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or
a :class:`numpy.random.Generator`.  Funnelling both through
:func:`as_generator` keeps experiments reproducible bit-for-bit while still
letting callers share one generator across components when they want
coupled randomness.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so state is shared).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def seed_sequence(seed=None) -> np.random.SeedSequence:
    """Build a :class:`numpy.random.SeedSequence` from a seed-like value."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(seed)
    raise TypeError(f"cannot build a SeedSequence from {type(seed).__name__}")


def spawn(seed, n: int) -> list:
    """Derive ``n`` independent generators from one seed-like value.

    Used when an experiment needs decoupled random streams (e.g. data
    generation vs. weight init vs. exploration noise) that are all pinned
    by a single top-level seed.
    """
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        children = seed.bit_generator.seed_seq.spawn(n)
    else:
        children = seed_sequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]


class PooledDraws:
    """Batched scalar draws from one :class:`~numpy.random.Generator`.

    Event-driven simulation consumes random variates one at a time, where
    numpy's per-call Generator dispatch overhead dominates the actual
    sampling.  A pool pre-draws blocks per distribution and hands out plain
    Python floats/ints; the realized stream is still fully deterministic
    given the generator's seed and the call sequence (pools refill in
    call order), it is just a *different* deterministic stream than
    scalar-by-scalar draws from the same seed.
    """

    __slots__ = ("_rng", "_block", "_pools")

    def __init__(self, rng=None, block: int = 256):
        if block < 1:
            raise ValueError("block must be >= 1")
        self._rng = as_generator(rng)
        self._block = int(block)
        self._pools: dict = {}

    def _next(self, key, sampler) -> float:
        pool = self._pools.get(key)
        if pool is None or pool[1] >= len(pool[0]):
            pool = [sampler(self._block).tolist(), 0]
            self._pools[key] = pool
        value = pool[0][pool[1]]
        pool[1] += 1
        return value

    def random(self) -> float:
        """One uniform [0, 1) draw."""
        return self._next("random", lambda n: self._rng.random(n))

    def integers(self, high: int) -> int:
        """One integer draw from ``[0, high)``."""
        return self._next(
            ("integers", high), lambda n: self._rng.integers(high, size=n)
        )

    def beta(self, a: float, b: float) -> float:
        """One Beta(a, b) draw."""
        return self._next(("beta", a, b), lambda n: self._rng.beta(a, b, size=n))


class DrawBatch:
    """Per-device :class:`PooledDraws` streams, taken across a device axis.

    The batched fleet engine holds N independent devices in lockstep; each
    device owns its own :class:`~numpy.random.Generator` and must consume
    *exactly* the variate stream the scalar per-device path would (same
    distribution keys, same per-device call order, same ``block``-sized
    refills), or bit-identity between the two engines breaks.

    ``DrawBatch`` keeps one ``(N, block)`` value pool plus an ``(N,)``
    cursor per distribution key.  A take gathers the current pool value for
    every requested device in one fancy-indexing pass; only devices whose
    pool ran dry refill, each from its own generator with the same sampler
    call ``PooledDraws`` would have made.  Cross-device ordering is free:
    streams are per-device, so batching the gather cannot change any
    device's realized sequence.
    """

    __slots__ = ("_rngs", "_block", "_pools")

    def __init__(self, rngs, block: int = 256):
        if block < 1:
            raise ValueError("block must be >= 1")
        self._rngs = [as_generator(r) for r in rngs]
        self._block = int(block)
        self._pools: dict = {}

    def __len__(self) -> int:
        return len(self._rngs)

    def _pool(self, key, dtype) -> list:
        pool = self._pools.get(key)
        if pool is None:
            values = np.empty((len(self._rngs), self._block), dtype=dtype)
            cursor = np.full(len(self._rngs), self._block, dtype=np.int64)
            # pool[2] counts takes guaranteed safe before any per-device
            # cursor can reach the block end (a take advances the maximum
            # cursor by at most one), so the hot path skips the dry check.
            pool = self._pools[key] = [values, cursor, 0]
        return pool

    def _refill(self, pool, sampler, idx, taken) -> np.ndarray:
        """Refill dry member pools; returns re-read cursors for ``idx``."""
        values, cursor, _ = pool
        dry = taken >= self._block
        if dry.any():
            for i in idx[dry].tolist():
                values[i] = sampler(self._rngs[i], self._block)
                cursor[i] = 0
            taken = cursor[idx]
            # Recompute the guaranteed-safe countdown only after a refill
            # actually moved a cursor.  While some member has never drawn
            # this key (cursor pinned at the block end — e.g. a device
            # that misses every event), the max stays there and the pool
            # runs in per-take check mode: just the cheap dry test above,
            # not this full-membership reduction.
            pool[2] = self._block - int(cursor.max()) - 1
        return taken

    # The three draw kinds are spelled out (instead of sharing a generic
    # _take with a sampler closure) because the per-call closure + extra
    # frame were measurable at the batched engine's call rate.

    def random(self, idx: np.ndarray) -> np.ndarray:
        """One uniform [0, 1) draw for each device in ``idx``."""
        pool = self._pools.get("random")
        if pool is None:
            pool = self._pool("random", np.float64)
        values, cursor, countdown = pool
        taken = cursor[idx]
        if countdown <= 0:
            taken = self._refill(
                pool, lambda rng, n: rng.random(n), idx, taken
            )
        else:
            pool[2] = countdown - 1
        out = values[idx, taken]
        cursor[idx] = taken + 1
        return out

    def integers(self, high: int, idx: np.ndarray) -> np.ndarray:
        """One integer draw from ``[0, high)`` for each device in ``idx``."""
        key = ("integers", high)
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pool(key, np.int64)
        values, cursor, countdown = pool
        taken = cursor[idx]
        if countdown <= 0:
            taken = self._refill(
                pool, lambda rng, n: rng.integers(high, size=n), idx, taken
            )
        else:
            pool[2] = countdown - 1
        out = values[idx, taken]
        cursor[idx] = taken + 1
        return out

    def beta(self, a: float, b: float, idx: np.ndarray) -> np.ndarray:
        """One Beta(a, b) draw for each device in ``idx``."""
        key = ("beta", a, b)
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pool(key, np.float64)
        values, cursor, countdown = pool
        taken = cursor[idx]
        if countdown <= 0:
            taken = self._refill(
                pool, lambda rng, n: rng.beta(a, b, size=n), idx, taken
            )
        else:
            pool[2] = countdown - 1
        out = values[idx, taken]
        cursor[idx] = taken + 1
        return out


def shuffled_indices(n: int, rng) -> np.ndarray:
    """Return a permutation of ``range(n)`` drawn from ``rng``."""
    gen = as_generator(rng)
    return gen.permutation(n)


def batches(n: int, batch_size: int, rng=None) -> Iterable[np.ndarray]:
    """Yield index batches covering ``range(n)``; shuffled when rng given."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = shuffled_indices(n, rng) if rng is not None else np.arange(n)
    for start in range(0, n, batch_size):
        yield order[start:start + batch_size]
