"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or
a :class:`numpy.random.Generator`.  Funnelling both through
:func:`as_generator` keeps experiments reproducible bit-for-bit while still
letting callers share one generator across components when they want
coupled randomness.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so state is shared).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def seed_sequence(seed=None) -> np.random.SeedSequence:
    """Build a :class:`numpy.random.SeedSequence` from a seed-like value."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(seed)
    raise TypeError(f"cannot build a SeedSequence from {type(seed).__name__}")


def spawn(seed, n: int) -> list:
    """Derive ``n`` independent generators from one seed-like value.

    Used when an experiment needs decoupled random streams (e.g. data
    generation vs. weight init vs. exploration noise) that are all pinned
    by a single top-level seed.
    """
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        children = seed.bit_generator.seed_seq.spawn(n)
    else:
        children = seed_sequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]


def shuffled_indices(n: int, rng) -> np.ndarray:
    """Return a permutation of ``range(n)`` drawn from ``rng``."""
    gen = as_generator(rng)
    return gen.permutation(n)


def batches(n: int, batch_size: int, rng=None) -> Iterable[np.ndarray]:
    """Yield index batches covering ``range(n)``; shuffled when rng given."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = shuffled_indices(n, rng) if rng is not None else np.arange(n)
    for start in range(0, n, batch_size):
        yield order[start:start + batch_size]
