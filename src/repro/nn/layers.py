"""Layer objects with forward/backward passes and compression hooks.

Each layer caches whatever its backward pass needs during ``forward`` with
``train=True``; inference calls (``train=False``) skip the caching.  Layers
that carry weights (:class:`Conv2d`, :class:`Linear`) expose two hooks used
by the compression stack:

``weight_quantizer``
    Optional callable applied to the weight tensor on every forward.  The
    gradient is accumulated on the *raw* weight (straight-through
    estimator), which is what makes post-compression fine-tuning work.
``input_quantizer``
    Optional callable applied to the layer's input activations, matching
    the paper's per-layer activation bitwidth ``b^a_l`` (activations are
    quantized where they are consumed, i.e. at the input of each weighted
    layer, the HAQ convention the paper follows).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn import init as weight_init
from repro.utils.rng import as_generator


class Parameter:
    """A trainable tensor: raw data plus its accumulated gradient."""

    __slots__ = ("name", "data", "grad")

    def __init__(self, name: str, data: np.ndarray):
        self.name = name
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.data.shape})"


class Layer:
    """Base class: a differentiable module with (possibly zero) parameters."""

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list:
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Conv2d(Layer):
    """2-D convolution over NCHW input with square kernel."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = "",
        rng=None,
    ):
        super().__init__(name)
        if min(in_channels, out_channels, kernel_size, stride) < 1:
            raise ShapeError("conv dimensions must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        gen = as_generator(rng)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            f"{self.name}.weight",
            weight_init.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, gen
            ),
        )
        self.bias = Parameter(f"{self.name}.bias", weight_init.zeros(out_channels)) if bias else None
        self.weight_quantizer = None
        self.input_quantizer = None
        self._cache = None

    def effective_weight(self) -> np.ndarray:
        """Weight tensor as the forward pass sees it (after quantization)."""
        w = self.weight.data
        return self.weight_quantizer(w) if self.weight_quantizer is not None else w

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if self.input_quantizer is not None:
            x = self.input_quantizer(x)
        w = self.effective_weight()
        b = self.bias.data if self.bias is not None else None
        out, cols = F.conv2d_forward(x, w, b, self.stride, self.padding)
        if train:
            self._cache = (x.shape, w, cols)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        x_shape, w, cols = self._cache
        dx, dw, db = F.conv2d_backward(dout, x_shape, w, cols, self.stride, self.padding)
        self.weight.grad += dw  # straight-through past the quantizer
        if self.bias is not None:
            self.bias.grad += db
        return dx

    def parameters(self) -> list:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


class Linear(Layer):
    """Fully-connected layer over (N, in_features) input."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        name: str = "",
        rng=None,
    ):
        super().__init__(name)
        if min(in_features, out_features) < 1:
            raise ShapeError("linear dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        gen = as_generator(rng)
        self.weight = Parameter(
            f"{self.name}.weight",
            weight_init.xavier_uniform((out_features, in_features), in_features, out_features, gen),
        )
        self.bias = Parameter(f"{self.name}.bias", weight_init.zeros(out_features)) if bias else None
        self.weight_quantizer = None
        self.input_quantizer = None
        self._cache = None

    def effective_weight(self) -> np.ndarray:
        w = self.weight.data
        return self.weight_quantizer(w) if self.weight_quantizer is not None else w

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 2:
            raise ShapeError(f"{self.name}: expected (N, {self.in_features}), got {x.shape}")
        if x.shape[1] != self.in_features:
            raise ShapeError(f"{self.name}: expected {self.in_features} features, got {x.shape[1]}")
        if self.input_quantizer is not None:
            x = self.input_quantizer(x)
        w = self.effective_weight()
        out = x @ w.T
        if self.bias is not None:
            out += self.bias.data[None, :]
        if train:
            self._cache = (x, w)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        x, w = self._cache
        self.weight.grad += dout.T @ x
        if self.bias is not None:
            self.bias.grad += dout.sum(axis=0)
        return dout @ w

    def parameters(self) -> list:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._mask = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if train:
            self._mask = x > 0.0
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        return dout * self._mask


class MaxPool2d(Layer):
    """Max pooling with square window."""

    def __init__(self, kernel_size: int, stride: int = 0, name: str = ""):
        super().__init__(name)
        if kernel_size < 1:
            raise ShapeError("pool kernel_size must be >= 1")
        if stride < 0:
            raise ShapeError("pool stride cannot be negative")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out, argmax = F.maxpool2d_forward(x, self.kernel_size, self.stride)
        if train:
            self._cache = (x.shape, argmax)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        x_shape, argmax = self._cache
        return F.maxpool2d_backward(dout, x_shape, argmax, self.kernel_size, self.stride)


class AvgPool2d(Layer):
    """Average pooling with square window."""

    def __init__(self, kernel_size: int, stride: int = 0, name: str = ""):
        super().__init__(name)
        if kernel_size < 1:
            raise ShapeError("pool kernel_size must be >= 1")
        if stride < 0:
            raise ShapeError("pool stride cannot be negative")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._x_shape = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out, _ = F.avgpool2d_forward(x, self.kernel_size, self.stride)
        if train:
            self._x_shape = x.shape
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        return F.avgpool2d_backward(dout, self._x_shape, self.kernel_size, self.stride)


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._x_shape = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        return dout.reshape(self._x_shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, p: float = 0.5, name: str = "", rng=None):
        super().__init__(name)
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = as_generator(rng)
        self._mask = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if not train or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return dout  # identity layer: forward cached no mask by design
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        return dout * self._mask


class Sigmoid(Layer):
    """Elementwise logistic; used by the DDPG actor's bounded output."""

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._out = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-x))
        if train:
            self._out = out
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        return dout * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Elementwise hyperbolic tangent."""

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._out = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if train:
            self._out = out
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        return dout * (1.0 - self._out ** 2)


class BatchNorm2d(Layer):
    """Batch normalization over NCHW channels (Ioffe & Szegedy, 2015).

    Normalizes each channel to zero mean / unit variance over the batch
    and spatial dimensions during training (tracking running statistics
    with ``momentum``), and uses the running statistics at inference.
    Deep normalization-free stacks in this substrate are prone to the
    dead-ReLU collapse documented in ``repro.models.baselines``; BatchNorm
    is the standard structural fix and is provided for custom
    architectures and extension work.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1, name: str = ""):
        super().__init__(name)
        if num_features < 1:
            raise ShapeError("num_features must be positive")
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(f"{self.name}.gamma", np.ones(num_features))
        self.beta = Parameter(f"{self.name}.beta", np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"{self.name}: expected (N, {self.num_features}, H, W), got {x.shape}"
            )
        if train:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean *= 1.0 - self.momentum
            self.running_mean += self.momentum * mean
            self.running_var *= 1.0 - self.momentum
            self.running_var += self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]
        if train:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(train=True)")
        x_hat, inv_std = self._cache
        n = dout.shape[0] * dout.shape[2] * dout.shape[3]
        self.gamma.grad += (dout * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += dout.sum(axis=(0, 2, 3))
        dx_hat = dout * self.gamma.data[None, :, None, None]
        # Standard batch-norm backward through the batch statistics.
        sum_dx_hat = dx_hat.sum(axis=(0, 2, 3), keepdims=True).transpose(1, 0, 2, 3)
        sum_dx_hat_xhat = (dx_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True).transpose(1, 0, 2, 3)
        dx = (
            dx_hat
            - sum_dx_hat.transpose(1, 0, 2, 3) / n
            - x_hat * sum_dx_hat_xhat.transpose(1, 0, 2, 3) / n
        ) * inv_std[None, :, None, None]
        return dx

    def parameters(self) -> list:
        return [self.gamma, self.beta]
