"""Pure-numpy neural-network substrate.

This subpackage replaces the PyTorch dependency of the original paper: it
provides convolution/pooling primitives, layer objects with backprop,
multi-exit network containers, losses, optimizers, a trainer, static
FLOPs/size profiling, and weight serialization.
"""

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.network import IncrementalState, MultiExitNetwork, Sequential
from repro.nn.losses import CrossEntropyLoss, MultiExitCrossEntropy
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.trainer import TrainConfig, Trainer, TrainHistory, evaluate_exit_accuracies
from repro.nn.flops import (
    ExitProfile,
    LayerProfile,
    ModelProfile,
    incremental_flops,
    profile_network,
)
from repro.nn.io import load_state_dict, load_weights, save_weights, state_dict

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "Layer",
    "Linear",
    "MaxPool2d",
    "Parameter",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "IncrementalState",
    "MultiExitNetwork",
    "Sequential",
    "CrossEntropyLoss",
    "MultiExitCrossEntropy",
    "SGD",
    "Adam",
    "Optimizer",
    "TrainConfig",
    "Trainer",
    "TrainHistory",
    "evaluate_exit_accuracies",
    "ExitProfile",
    "LayerProfile",
    "ModelProfile",
    "incremental_flops",
    "profile_network",
    "load_state_dict",
    "load_weights",
    "save_weights",
    "state_dict",
]
