"""Loss functions, including the joint multi-exit objective.

Multi-exit networks are trained with a weighted sum of per-exit
cross-entropies (BranchyNet-style).  The default weights slightly favour
early exits, which is what keeps their accuracy competitive and is the
pre-condition for the paper's nonuniform compression to have headroom.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.mathx import log_softmax, one_hot, softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer labels.

    ``forward`` returns the mean loss; ``backward`` returns dLoss/dlogits
    (already divided by the batch size).
    """

    def __init__(self):
        self._cache = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ShapeError(f"logits must be (N, K), got {logits.shape}")
        if labels.shape[0] != logits.shape[0]:
            raise ShapeError("batch size mismatch between logits and labels")
        logp = log_softmax(logits, axis=1)
        n = logits.shape[0]
        loss = -float(np.mean(logp[np.arange(n), labels]))
        self._cache = (logits, labels)
        return loss

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        logits, labels = self._cache
        n, k = logits.shape
        grad = softmax(logits, axis=1) - one_hot(labels, k)
        return grad / n

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MultiExitCrossEntropy:
    """Weighted sum of cross-entropies across all exits.

    ``weights=None`` gives every exit weight 1.  The per-exit losses from
    the last ``forward`` are kept on ``last_exit_losses`` for logging.
    """

    def __init__(self, num_exits: int, weights=None):
        if num_exits < 1:
            raise ValueError("num_exits must be >= 1")
        if weights is None:
            weights = [1.0] * num_exits
        if len(weights) != num_exits:
            raise ValueError("need one weight per exit")
        if any(w < 0 for w in weights):
            raise ValueError("exit weights must be non-negative")
        self.weights = [float(w) for w in weights]
        self._criteria = [CrossEntropyLoss() for _ in range(num_exits)]
        self.last_exit_losses = [0.0] * num_exits

    def forward(self, logits_list: list, labels: np.ndarray) -> float:
        if len(logits_list) != len(self._criteria):
            raise ShapeError("one logits tensor per exit required")
        total = 0.0
        for i, (criterion, logits) in enumerate(zip(self._criteria, logits_list)):
            loss_i = criterion.forward(logits, labels)
            self.last_exit_losses[i] = loss_i
            total += self.weights[i] * loss_i
        return total

    def backward(self) -> list:
        return [w * c.backward() for w, c in zip(self.weights, self._criteria)]

    def __call__(self, logits_list: list, labels: np.ndarray) -> float:
        return self.forward(logits_list, labels)
