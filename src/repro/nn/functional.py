"""Array-level neural-network primitives (im2col convolution, pooling).

These functions are pure: they take arrays in, return arrays out, and stash
nothing.  Layer objects in :mod:`repro.nn.layers` own the caching needed for
backprop.  Data layout is NCHW throughout (batch, channels, height, width),
matching the convention of the paper's PyTorch reference implementations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def conv_output_hw(h: int, w: int, kernel: int, stride: int, padding: int):
    """Spatial output size of a convolution/pool with square kernel."""
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"kernel {kernel} stride {stride} pad {padding} does not fit "
            f"input {h}x{w}"
        )
    return oh, ow


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold ``x`` (N,C,H,W) into columns of shape (N, C*k*k, OH*OW).

    Each output column holds one receptive field, so convolution becomes a
    single matmul with the reshaped filter bank.
    """
    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    # Strided view: (N, C, k, k, OH, OW) without copying.
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    return view.reshape(n, c * kernel * kernel, oh * ow).copy()


def col2im(
    cols: np.ndarray,
    x_shape,
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back to (N,C,H,W), summing overlapping contributions.

    Inverse-accumulate of :func:`im2col`; used by the convolution backward
    pass to scatter gradients to the input.
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kernel, kernel, oh, ow)
    for ki in range(kernel):
        hi_end = ki + stride * oh
        for kj in range(kernel):
            wj_end = kj + stride * ow
            out[:, :, ki:hi_end:stride, kj:wj_end:stride] += cols6[:, :, ki, kj]
    if padding > 0:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def conv2d_forward(x, weight, bias, stride: int, padding: int):
    """Convolution forward. Returns (output, cols) with cols kept for backward.

    ``weight`` has shape (OutC, InC, k, k); output is (N, OutC, OH, OW).
    """
    if x.ndim != 4:
        raise ShapeError(f"conv2d expects NCHW input, got ndim={x.ndim}")
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if kh != kw:
        raise ShapeError("only square kernels are supported")
    if ic != c:
        raise ShapeError(f"input has {c} channels but weight expects {ic}")
    oh, ow = conv_output_hw(h, w, kh, stride, padding)
    cols = im2col(x, kh, stride, padding)  # (N, C*k*k, OH*OW)
    wmat = weight.reshape(oc, ic * kh * kw)
    out = np.einsum("ok,nkp->nop", wmat, cols, optimize=True)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(n, oc, oh, ow), cols


def conv2d_backward(dout, x_shape, weight, cols, stride: int, padding: int):
    """Convolution backward. Returns (dx, dweight, dbias)."""
    n, oc, oh, ow = dout.shape
    oc_w, ic, kh, kw = weight.shape
    dout2 = dout.reshape(n, oc, oh * ow)
    dbias = dout2.sum(axis=(0, 2))
    # dW = sum_n dout2 @ cols^T, folded back to filter shape.
    dwmat = np.einsum("nop,nkp->ok", dout2, cols, optimize=True)
    dweight = dwmat.reshape(weight.shape)
    wmat = weight.reshape(oc, ic * kh * kw)
    dcols = np.einsum("ok,nop->nkp", wmat, dout2, optimize=True)
    dx = col2im(dcols, x_shape, kh, stride, padding)
    return dx, dweight, dbias


def maxpool2d_forward(x, kernel: int, stride: int):
    """Max pooling forward. Returns (output, argmax) for the backward pass.

    Excess rows/columns that do not fill a full window are dropped (floor
    division), matching the common framework default.
    """
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(f"pool kernel {kernel} does not fit input {h}x{w}")
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    windows = view.reshape(n, c, oh, ow, kernel * kernel)
    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
    return out, argmax


def maxpool2d_backward(dout, x_shape, argmax, kernel: int, stride: int):
    """Max pooling backward: route each gradient to its argmax location."""
    n, c, h, w = x_shape
    oh, ow = dout.shape[2], dout.shape[3]
    dx = np.zeros(x_shape, dtype=dout.dtype)
    ki = argmax // kernel
    kj = argmax % kernel
    oi = np.arange(oh)[None, None, :, None]
    oj = np.arange(ow)[None, None, None, :]
    rows = oi * stride + ki
    cols = oj * stride + kj
    nn = np.arange(n)[:, None, None, None]
    cc = np.arange(c)[None, :, None, None]
    np.add.at(dx, (nn, cc, rows, cols), dout)
    return dx


def avgpool2d_forward(x, kernel: int, stride: int):
    """Average pooling forward; returns (output, None)."""
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(f"pool kernel {kernel} does not fit input {h}x{w}")
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    return view.mean(axis=(-1, -2)), None


def avgpool2d_backward(dout, x_shape, kernel: int, stride: int):
    """Average pooling backward: spread gradient uniformly over each window."""
    n, c, h, w = x_shape
    oh, ow = dout.shape[2], dout.shape[3]
    dx = np.zeros(x_shape, dtype=dout.dtype)
    share = dout / (kernel * kernel)
    for ki in range(kernel):
        for kj in range(kernel):
            dx[:, :, ki:ki + stride * oh:stride, kj:kj + stride * ow:stride] += share
    return dx
