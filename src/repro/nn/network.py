r"""Network containers: :class:`Sequential` and :class:`MultiExitNetwork`.

A multi-exit network is a backbone split into segments, with a classifier
branch attached after each segment (BranchyNet-style [10]).  Exit ``i``
consumes segments ``0..i`` plus branch ``i``::

    x -> seg0 -> branch0 -> logits_0
           \-> seg1 -> branch1 -> logits_1
                  \-> seg2 -> branch2 -> logits_2

The container supports three inference modes used by the runtime:

* ``forward_all`` — all exits at once (training / evaluation);
* ``forward_to_exit`` — run only as deep as one chosen exit;
* ``begin_incremental`` — a stateful cursor that runs to an exit and can
  later *continue* to deeper exits without recomputing shared segments,
  which is exactly the paper's incremental-inference primitive.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import Layer


class Sequential(Layer):
    """A chain of layers applied in order."""

    def __init__(self, layers, name: str = ""):
        super().__init__(name)
        self.layers = list(layers)

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def parameters(self) -> list:
        params = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class IncrementalState:
    """Cursor for incremental multi-exit inference.

    Holds the deepest computed backbone activation so a later ``continue``
    only pays for the *marginal* segments and branch — the saved activation
    corresponds to the checkpointed intermediate result an intermittent
    runtime would keep in nonvolatile memory.
    """

    def __init__(self, network: "MultiExitNetwork", x: np.ndarray):
        self._network = network
        self._activation = x
        self._depth = -1  # index of deepest segment already computed
        self.logits = None
        self.exit_index = None

    def run_to_exit(self, exit_index: int) -> np.ndarray:
        """Advance through segments up to ``exit_index`` and run its branch."""
        net = self._network
        if not 0 <= exit_index < net.num_exits:
            raise ConfigError(f"exit index {exit_index} out of range")
        if exit_index <= self._depth:
            raise ConfigError(
                f"cannot run to exit {exit_index}: already at segment {self._depth}"
            )
        for seg in range(self._depth + 1, exit_index + 1):
            self._activation = net.segments[seg].forward(self._activation, train=False)
        self._depth = exit_index
        self.exit_index = exit_index
        self.logits = net.branches[exit_index].forward(self._activation, train=False)
        return self.logits

    @property
    def can_continue(self) -> bool:
        return self._depth < self._network.num_exits - 1


class MultiExitNetwork:
    """Backbone segments with one classifier branch per segment."""

    def __init__(self, segments, branches, name: str = "multi_exit", num_classes: int = 10):
        if len(segments) != len(branches):
            raise ConfigError(
                f"need one branch per segment, got {len(segments)} segments "
                f"and {len(branches)} branches"
            )
        if not segments:
            raise ConfigError("network needs at least one segment")
        self.segments = [s if isinstance(s, Sequential) else Sequential(s) for s in segments]
        self.branches = [b if isinstance(b, Sequential) else Sequential(b) for b in branches]
        self.name = name
        self.num_classes = num_classes

    @property
    def num_exits(self) -> int:
        return len(self.branches)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def forward_all(self, x: np.ndarray, train: bool = False) -> list:
        """Run the whole network; return logits at every exit."""
        logits = []
        h = x
        for seg, branch in zip(self.segments, self.branches):
            h = seg.forward(h, train=train)
            logits.append(branch.forward(h, train=train))
        return logits

    def forward_to_exit(self, x: np.ndarray, exit_index: int) -> np.ndarray:
        """Run only segments ``0..exit_index`` plus that exit's branch."""
        if not 0 <= exit_index < self.num_exits:
            raise ConfigError(f"exit index {exit_index} out of range")
        h = x
        for seg in self.segments[: exit_index + 1]:
            h = seg.forward(h, train=False)
        return self.branches[exit_index].forward(h, train=False)

    def begin_incremental(self, x: np.ndarray) -> IncrementalState:
        """Start a stateful incremental inference over ``x``."""
        return IncrementalState(self, x)

    def predict(self, x: np.ndarray, exit_index: int = -1) -> np.ndarray:
        """Class predictions at one exit (default: final exit)."""
        if exit_index < 0:
            exit_index = self.num_exits + exit_index
        logits = self.forward_to_exit(x, exit_index)
        return logits.argmax(axis=1)

    # ------------------------------------------------------------------ #
    # Training support
    # ------------------------------------------------------------------ #
    def backward_all(self, dlogits: list) -> np.ndarray:
        """Backprop gradients from every exit simultaneously.

        ``dlogits[i]`` is dLoss/dlogits at exit ``i`` (zeros allowed).  The
        gradient that flows into segment ``i``'s output is the sum of its
        branch gradient and the gradient carried back from deeper segments.
        """
        if len(dlogits) != self.num_exits:
            raise ConfigError("need one gradient per exit")
        carried = None
        for i in reversed(range(self.num_exits)):
            grad_h = self.branches[i].backward(dlogits[i])
            if carried is not None:
                grad_h = grad_h + carried
            carried = self.segments[i].backward(grad_h)
        return carried

    def parameters(self) -> list:
        params = []
        for seg in self.segments:
            params.extend(seg.parameters())
        for branch in self.branches:
            params.extend(branch.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # Introspection used by the compression stack
    # ------------------------------------------------------------------ #
    def weighted_layers(self) -> list:
        """All Conv2d/Linear layers in execution order (backbone then each
        branch, matching the paper's Fig. 4 layer listing)."""
        from repro.nn.layers import Conv2d, Linear

        ordered = []
        for seg in self.segments:
            ordered.extend(ly for ly in seg if isinstance(ly, (Conv2d, Linear)))
        for branch in self.branches:
            ordered.extend(ly for ly in branch if isinstance(ly, (Conv2d, Linear)))
        return ordered

    def layer_by_name(self, name: str) -> Layer:
        for layer in self.weighted_layers():
            if layer.name == name:
                return layer
        raise KeyError(f"no weighted layer named {name!r} in {self.name}")

    def exit_layer_names(self, exit_index: int) -> list:
        """Names of weighted layers that exit ``exit_index`` depends on."""
        from repro.nn.layers import Conv2d, Linear

        names = []
        for seg in self.segments[: exit_index + 1]:
            names.extend(ly.name for ly in seg if isinstance(ly, (Conv2d, Linear)))
        names.extend(
            ly.name for ly in self.branches[exit_index] if isinstance(ly, (Conv2d, Linear))
        )
        return names
