"""FLOPs and model-size accounting for multi-exit networks.

Convention (documented in DESIGN.md §6): one multiply-accumulate counts as
**one FLOP**, which is the convention under which the paper's reported exit
costs (0.4452M / 1.2602M / 1.6202M for a LeNet-class backbone) are
reproducible.  Model size counts weights at their (possibly quantized)
bitwidth plus biases at 32 bits, matching Eq. 8's ``S_model``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ShapeError
from repro.nn.functional import conv_output_hw
from repro.nn.layers import AvgPool2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.network import MultiExitNetwork, Sequential


@dataclass
class LayerProfile:
    """Static cost record for one weighted layer."""

    name: str
    kind: str                 # "conv" or "linear"
    flops: int                # MACs for one input sample
    weight_count: int
    bias_count: int
    in_channels: int
    out_channels: int
    kernel_size: int
    in_shape: tuple
    out_shape: tuple

    def weight_bits(self, bitwidth: int = 32) -> int:
        """Stored size in bits at the given weight bitwidth."""
        return self.weight_count * bitwidth + self.bias_count * 32


@dataclass
class ExitProfile:
    """Cumulative cost of reaching one exit (segments 0..i + branch i)."""

    exit_index: int
    flops: int
    layer_names: list = field(default_factory=list)


@dataclass
class ModelProfile:
    """Full static profile of a multi-exit network."""

    layers: list              # LayerProfile in execution order
    exits: list               # ExitProfile per exit
    input_shape: tuple

    def layer(self, name: str) -> LayerProfile:
        for lp in self.layers:
            if lp.name == name:
                return lp
        raise KeyError(f"no profiled layer named {name!r}")

    @property
    def exit_flops(self) -> list:
        return [e.flops for e in self.exits]

    @property
    def total_flops(self) -> int:
        """FLOPs of the deepest exit (a full forward pass)."""
        return self.exits[-1].flops

    @property
    def total_weights(self) -> int:
        return sum(lp.weight_count for lp in self.layers)

    def model_size_bits(self, weight_bitwidths=None) -> int:
        """Total stored size; ``weight_bitwidths`` maps layer name -> bits."""
        total = 0
        for lp in self.layers:
            bits = 32 if weight_bitwidths is None else weight_bitwidths.get(lp.name, 32)
            total += lp.weight_bits(bits)
        return total

    def model_size_bytes(self, weight_bitwidths=None) -> float:
        return self.model_size_bits(weight_bitwidths) / 8.0

    def model_size_kb(self, weight_bitwidths=None) -> float:
        return self.model_size_bits(weight_bitwidths) / 8.0 / 1024.0


def _trace_sequential(seq: Sequential, shape, records: list):
    """Walk one Sequential, appending LayerProfiles; returns output shape."""
    for layer in seq:
        if isinstance(layer, Conv2d):
            c, h, w = shape
            if c != layer.in_channels:
                raise ShapeError(
                    f"{layer.name}: input has {c} channels, expected {layer.in_channels}"
                )
            oh, ow = conv_output_hw(h, w, layer.kernel_size, layer.stride, layer.padding)
            macs = (
                layer.out_channels
                * layer.in_channels
                * layer.kernel_size ** 2
                * oh
                * ow
            )
            records.append(
                LayerProfile(
                    name=layer.name,
                    kind="conv",
                    flops=macs,
                    weight_count=layer.weight.size,
                    bias_count=layer.bias.size if layer.bias is not None else 0,
                    in_channels=layer.in_channels,
                    out_channels=layer.out_channels,
                    kernel_size=layer.kernel_size,
                    in_shape=shape,
                    out_shape=(layer.out_channels, oh, ow),
                )
            )
            shape = (layer.out_channels, oh, ow)
        elif isinstance(layer, Linear):
            if len(shape) != 1:
                raise ShapeError(f"{layer.name}: expected flat input, got {shape}")
            if shape[0] != layer.in_features:
                raise ShapeError(
                    f"{layer.name}: input has {shape[0]} features, "
                    f"expected {layer.in_features}"
                )
            macs = layer.out_features * layer.in_features
            records.append(
                LayerProfile(
                    name=layer.name,
                    kind="linear",
                    flops=macs,
                    weight_count=layer.weight.size,
                    bias_count=layer.bias.size if layer.bias is not None else 0,
                    in_channels=layer.in_features,
                    out_channels=layer.out_features,
                    kernel_size=1,
                    in_shape=shape,
                    out_shape=(layer.out_features,),
                )
            )
            shape = (layer.out_features,)
        elif isinstance(layer, (MaxPool2d, AvgPool2d)):
            c, h, w = shape
            oh = (h - layer.kernel_size) // layer.stride + 1
            ow = (w - layer.kernel_size) // layer.stride + 1
            shape = (c, oh, ow)
        elif isinstance(layer, Flatten):
            size = 1
            for d in shape:
                size *= d
            shape = (size,)
        elif isinstance(layer, (ReLU, Dropout)):
            pass  # shape- and FLOP-free under the MAC convention
        else:
            raise ShapeError(f"cannot profile layer type {type(layer).__name__}")
    return shape


def profile_network(net: MultiExitNetwork, input_shape) -> ModelProfile:
    """Statically profile ``net`` for one sample of shape ``(C, H, W)``."""
    input_shape = tuple(input_shape)
    layers: list = []
    exits: list = []
    shape = input_shape
    backbone_flops = 0
    backbone_names: list = []
    for i, (seg, branch) in enumerate(zip(net.segments, net.branches)):
        seg_start = len(layers)
        shape = _trace_sequential(seg, shape, layers)
        backbone_flops += sum(lp.flops for lp in layers[seg_start:])
        backbone_names.extend(lp.name for lp in layers[seg_start:])
        branch_records: list = []
        _trace_sequential(branch, shape, branch_records)
        layers_for_exit = list(backbone_names) + [lp.name for lp in branch_records]
        exits.append(
            ExitProfile(
                exit_index=i,
                flops=backbone_flops + sum(lp.flops for lp in branch_records),
                layer_names=layers_for_exit,
            )
        )
        layers.extend(branch_records)
    return ModelProfile(layers=layers, exits=exits, input_shape=input_shape)


def incremental_flops(profile: ModelProfile) -> list:
    """Marginal FLOPs of continuing from exit ``i`` to exit ``i+1``.

    Entry ``i`` is the cost of the *additional* segments plus branch
    ``i+1``, i.e. what an incremental inference pays after having already
    produced exit ``i``'s result (branch ``i``'s cost is not refunded).
    """
    out = []
    for i in range(len(profile.exits) - 1):
        cur, nxt = profile.exits[i], profile.exits[i + 1]
        cur_branch = set(cur.layer_names) - set(nxt.layer_names)
        branch_cost = sum(profile.layer(n).flops for n in cur_branch)
        backbone_cur = cur.flops - branch_cost
        out.append(nxt.flops - backbone_cur)
    return out
