"""Optimizers operating in-place on :class:`~repro.nn.layers.Parameter`."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.9, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
