"""Joint training loop for multi-exit networks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import MultiExitCrossEntropy
from repro.nn.network import MultiExitNetwork
from repro.nn.optim import SGD, Adam
from repro.utils.rng import as_generator, batches


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`Trainer`.

    ``exit_weights=None`` weighs every exit equally in the joint loss.
    ``lr_decay`` multiplies the learning rate once per epoch.
    """

    epochs: int = 10
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay: float = 0.95
    optimizer: str = "sgd"  # "sgd" or "adam"
    exit_weights: list = None
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainHistory:
    """Per-epoch curves recorded during training."""

    loss: list = field(default_factory=list)
    exit_losses: list = field(default_factory=list)      # list of per-exit lists
    val_exit_accuracy: list = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> list:
        return self.val_exit_accuracy[-1] if self.val_exit_accuracy else []


def evaluate_exit_accuracies(
    net: MultiExitNetwork, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> list:
    """Top-1 accuracy of every exit over a dataset (single forward sweep)."""
    correct = np.zeros(net.num_exits, dtype=np.int64)
    for idx in batches(len(x), batch_size):
        logits_list = net.forward_all(x[idx], train=False)
        labels = y[idx]
        for i, logits in enumerate(logits_list):
            correct[i] += int(np.sum(logits.argmax(axis=1) == labels))
    return [float(c) / len(x) for c in correct]


class Trainer:
    """Trains a :class:`MultiExitNetwork` with the joint cross-entropy."""

    def __init__(self, config: TrainConfig = None):
        self.config = config or TrainConfig()

    def _make_optimizer(self, net: MultiExitNetwork):
        cfg = self.config
        if cfg.optimizer == "sgd":
            return SGD(
                net.parameters(),
                lr=cfg.lr,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
            )
        if cfg.optimizer == "adam":
            return Adam(net.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    def fit(
        self,
        net: MultiExitNetwork,
        train_x: np.ndarray,
        train_y: np.ndarray,
        val_x: np.ndarray = None,
        val_y: np.ndarray = None,
    ) -> TrainHistory:
        """Run the full training loop; returns the recorded history."""
        cfg = self.config
        rng = as_generator(cfg.seed)
        criterion = MultiExitCrossEntropy(net.num_exits, cfg.exit_weights)
        optimizer = self._make_optimizer(net)
        history = TrainHistory()
        for epoch in range(cfg.epochs):
            epoch_loss = 0.0
            epoch_exit_losses = np.zeros(net.num_exits)
            num_batches = 0
            for idx in batches(len(train_x), cfg.batch_size, rng):
                optimizer.zero_grad()
                logits_list = net.forward_all(train_x[idx], train=True)
                loss = criterion(logits_list, train_y[idx])
                net.backward_all(criterion.backward())
                optimizer.step()
                epoch_loss += loss
                epoch_exit_losses += criterion.last_exit_losses
                num_batches += 1
            history.loss.append(epoch_loss / num_batches)
            history.exit_losses.append(list(epoch_exit_losses / num_batches))
            if val_x is not None:
                accs = evaluate_exit_accuracies(net, val_x, val_y)
                history.val_exit_accuracy.append(accs)
                if cfg.verbose:
                    pretty = ", ".join(f"{a:.3f}" for a in accs)
                    print(f"epoch {epoch + 1}/{cfg.epochs}: loss={history.loss[-1]:.4f} val=[{pretty}]")
            elif cfg.verbose:
                print(f"epoch {epoch + 1}/{cfg.epochs}: loss={history.loss[-1]:.4f}")
            optimizer.lr *= cfg.lr_decay
        return history
