"""Weight initializers.

Kaiming/He initialization is the default for ReLU networks; Xavier/Glorot is
provided for linear heads.  All initializers take an explicit RNG so model
construction is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator


def he_normal(shape, fan_in: int, rng) -> np.ndarray:
    """He-normal init: N(0, sqrt(2/fan_in)), suited to ReLU activations."""
    gen = as_generator(rng)
    std = np.sqrt(2.0 / max(1, fan_in))
    return gen.normal(0.0, std, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng) -> np.ndarray:
    """Glorot-uniform init: U(-a, a) with a = sqrt(6/(fan_in+fan_out))."""
    gen = as_generator(rng)
    bound = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return gen.uniform(-bound, bound, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape, dtype=np.float64)
