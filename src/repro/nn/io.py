"""Save and load multi-exit network weights as ``.npz`` archives.

Only parameter tensors are stored; the architecture is reconstructed by the
caller (model constructors live in :mod:`repro.models`), which keeps the
format trivially portable and diff-able.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SerializationError
from repro.nn.network import MultiExitNetwork


def state_dict(net: MultiExitNetwork) -> dict:
    """Map parameter name -> array for every parameter in ``net``."""
    out = {}
    for p in net.parameters():
        if p.name in out:
            raise SerializationError(f"duplicate parameter name {p.name!r}")
        out[p.name] = p.data.copy()
    return out


def load_state_dict(net: MultiExitNetwork, state: dict, strict: bool = True) -> None:
    """Copy arrays from ``state`` into ``net``'s parameters in place."""
    own = {p.name: p for p in net.parameters()}
    missing = set(own) - set(state)
    unexpected = set(state) - set(own)
    if strict and (missing or unexpected):
        raise SerializationError(
            f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
        )
    for name, param in own.items():
        if name not in state:
            continue
        value = np.asarray(state[name], dtype=np.float64)
        if value.shape != param.data.shape:
            raise SerializationError(
                f"{name}: shape {value.shape} does not match {param.data.shape}"
            )
        param.data[...] = value
        param.zero_grad()


def save_weights(net: MultiExitNetwork, path: str) -> None:
    """Write all parameters to ``path`` (``.npz``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state_dict(net))


def load_weights(net: MultiExitNetwork, path: str, strict: bool = True) -> None:
    """Load parameters previously written by :func:`save_weights`."""
    if not os.path.exists(path):
        raise SerializationError(f"weight file not found: {path}")
    with np.load(path) as archive:
        load_state_dict(net, dict(archive.items()), strict=strict)
