"""Energy-harvesting power traces.

The paper powers its MCU from a solar profile (NREL Oak Ridge rotating
shadowband radiometer data [17]); that dataset is not available offline, so
:func:`solar_trace` synthesizes the same character — a diurnal envelope
modulated by cloud occlusion (an Ornstein-Uhlenbeck process squashed to
[0, 1]) plus sensor noise.  Kinetic (bursty), RF (weak, steady), wind
(gusty, cubic-response), piezo (duty-cycled vibration), and constant
traces support ablations and heterogeneous fleet scenarios, and
:func:`trace_from_csv` loads real measurement files.

A :class:`PowerTrace` stores power samples on a uniform grid and exposes
interpolation, windowed means (the runtime's "charging efficiency" signal),
and exact cumulative-energy queries used by the simulator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError, EnergyError
from repro.utils.rng import as_generator


class PowerTrace:
    """Harvested power (milliWatts) sampled on a uniform time grid."""

    def __init__(self, samples_mw: np.ndarray, dt: float, name: str = "trace"):
        samples = np.asarray(samples_mw, dtype=np.float64)
        if samples.ndim != 1 or samples.size < 2:
            raise ConfigError("trace needs a 1-D array of at least 2 samples")
        if dt <= 0:
            raise ConfigError("dt must be positive")
        if np.any(samples < 0):
            raise EnergyError("harvested power cannot be negative")
        self.samples_mw = samples
        self.dt = float(dt)
        self.name = name
        # Trapezoidal cumulative energy in mJ for O(1) interval queries.
        increments = 0.5 * (samples[1:] + samples[:-1]) * dt
        self._cum_energy = np.concatenate([[0.0], np.cumsum(increments)])

    @property
    def duration(self) -> float:
        """Trace length in seconds."""
        return (len(self.samples_mw) - 1) * self.dt

    def _clip_time(self, t: float) -> float:
        return min(max(t, 0.0), self.duration)

    def power(self, t):
        """Instantaneous power (mW) at ``t``, linearly interpolated.

        ``t`` may be a scalar (returns ``float``) or an array of times
        (returns an array via NumPy broadcasting) — the fleet layer queries
        traces in bulk, so the array path avoids a Python-level loop.
        """
        arr = np.asarray(t, dtype=np.float64)
        if arr.ndim == 0:
            tc = self._clip_time(float(arr))
            pos = tc / self.dt
            i = int(pos)
            if i >= len(self.samples_mw) - 1:
                return float(self.samples_mw[-1])
            frac = pos - i
            return float((1 - frac) * self.samples_mw[i] + frac * self.samples_mw[i + 1])
        pos = np.clip(arr, 0.0, self.duration) / self.dt
        i = np.minimum(pos.astype(np.int64), len(self.samples_mw) - 2)
        frac = pos - i
        return (1 - frac) * self.samples_mw[i] + frac * self.samples_mw[i + 1]

    def energy_between(self, t0, t1):
        """Harvested energy (mJ) in ``[t0, t1]``.

        ``t0``/``t1`` may be scalars (returns ``float``) or equal-shaped
        arrays of interval endpoints (returns an array) — the simulator
        precomputes every event's charge increment in one bulk query
        instead of interpolating per event.
        """
        if np.ndim(t0) == 0 and np.ndim(t1) == 0:
            if t1 < t0:
                raise EnergyError(f"interval reversed: {t0} > {t1}")
            return self._cum_at(self._clip_time(t1)) - self._cum_at(self._clip_time(t0))
        t0 = np.asarray(t0, dtype=np.float64)
        t1 = np.asarray(t1, dtype=np.float64)
        if np.any(t1 < t0):
            raise EnergyError("interval reversed in bulk energy query")
        duration = self.duration
        return self._cum_bulk(np.clip(t1, 0.0, duration)) - self._cum_bulk(
            np.clip(t0, 0.0, duration)
        )

    def _cum_at(self, t: float) -> float:
        pos = t / self.dt
        i = int(pos)
        if i >= len(self.samples_mw) - 1:
            return float(self._cum_energy[-1])
        frac = pos - i
        p0 = self.samples_mw[i]
        pt = (1 - frac) * p0 + frac * self.samples_mw[i + 1]
        partial = 0.5 * (p0 + pt) * (frac * self.dt)
        return float(self._cum_energy[i] + partial)

    def _cum_bulk(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_cum_at` over already-clipped times.

        Matches the scalar path bit-for-bit (same interpolation
        arithmetic), including the scalar early-return for positions at or
        past the last sample — ``duration / dt`` can round a hair above
        ``n - 1`` for inexact ``dt``, where interpolating instead of
        returning the exact total would drift by an ulp.
        """
        pos = np.asarray(t, dtype=np.float64) / self.dt
        last = len(self.samples_mw) - 1
        past_end = pos >= last  # same branch as the scalar i >= len-1 return
        i = np.minimum(pos.astype(np.int64), last - 1)
        frac = pos - i
        p0 = self.samples_mw[i]
        pt = (1 - frac) * p0 + frac * self.samples_mw[i + 1]
        partial = self._cum_energy[i] + 0.5 * (p0 + pt) * (frac * self.dt)
        return np.where(past_end, self._cum_energy[-1], partial)

    @property
    def total_energy_mj(self) -> float:
        return float(self._cum_energy[-1])

    def mean_power(self, t, window: float = 30.0):
        """Average power over the trailing ``window`` seconds before ``t``.

        This is the runtime's observable "charging efficiency" P: recent
        harvesting conditions, not the unknowable future.  ``t`` may be a
        scalar or an array of query times; the simulator precomputes the
        observed P for a whole event stream in one call.
        """
        if window <= 0:
            raise ConfigError("window must be positive")
        if np.ndim(t) == 0:
            t = self._clip_time(float(t))
            t0 = max(0.0, t - window)
            if t == t0:
                return self.power(t)
            return self.energy_between(t0, t) / (t - t0)
        t = np.clip(np.asarray(t, dtype=np.float64), 0.0, self.duration)
        t0 = np.maximum(0.0, t - window)
        span = t - t0
        degenerate = span <= 0.0  # only t == 0 with a positive window
        windowed = (self._cum_bulk(t) - self._cum_bulk(t0)) / np.where(
            degenerate, 1.0, span
        )
        if degenerate.any():
            return np.where(degenerate, self.power(t), windowed)
        return windowed

    def scaled(self, factor: float) -> "PowerTrace":
        """A copy with power multiplied by ``factor``."""
        if factor < 0:
            raise EnergyError("scale factor must be non-negative")
        return PowerTrace(self.samples_mw * factor, self.dt, name=f"{self.name}*{factor:g}")


def trace_from_samples(samples_mw, dt: float, name: str = "custom") -> PowerTrace:
    """Wrap raw samples in a :class:`PowerTrace`."""
    return PowerTrace(np.asarray(samples_mw), dt, name=name)


def trace_from_csv(
    path: str, dt: Optional[float] = None, name: Optional[str] = None
) -> PowerTrace:
    """Load a trace from CSV.

    Accepts one column (power mW, requires ``dt``) or two columns
    (time s, power mW on a uniform grid).
    """
    try:
        data = np.loadtxt(path, delimiter=",", ndmin=2)
    except ValueError as exc:
        raise ConfigError(f"malformed CSV {path!r}: {exc}") from exc
    if data.shape[1] == 1:
        if dt is None:
            raise ConfigError("single-column CSV requires an explicit dt")
        samples = data[:, 0]
    elif data.shape[1] >= 2:
        # Extra columns (annotations etc.) are ignored, as before.
        times, samples = data[:, 0], data[:, 1]
        steps = np.diff(times)
        if steps.size == 0 or not np.allclose(steps, steps[0], rtol=1e-3):
            raise ConfigError("CSV time column must be a uniform grid")
        dt = float(steps[0])
    else:
        raise ConfigError(f"CSV must have 1 or 2 columns, got {data.shape[1]}")
    return PowerTrace(samples, dt, name=name or f"csv:{path}")


def constant_trace(power_mw: float, duration: float, dt: float = 0.1) -> PowerTrace:
    """Steady harvesting at ``power_mw`` (tethered-supply ablation)."""
    n = int(round(duration / dt)) + 1
    return PowerTrace(np.full(n, float(power_mw)), dt, name="constant")


def _ou_process(n: int, dt: float, theta: float, sigma: float, rng) -> np.ndarray:
    """Zero-mean Ornstein-Uhlenbeck path (cloud/burst dynamics).

    The Euler-Maruyama recurrence ``x[i] = phi * x[i-1] + noise[i-1]`` with
    ``phi = 1 - theta * dt`` is an exact AR(1), so the whole path follows
    from a scan: ``x[i] = phi**i * sum_{j<i} noise[j] * phi**-(j+1)``.
    Rescaling by ``phi**-j`` overflows float64 over tens of thousands of
    samples, so the scan runs in blocks sized to bound the in-block dynamic
    range at ~1e4 (keeping the result within ~1e-12 of the sequential
    loop), carrying the block-final value across block boundaries.  Traces
    of 36k-43k samples synthesize in a handful of vectorized passes instead
    of a Python-level loop per sample — the former fleet-path bottleneck.
    """
    x = np.zeros(n)
    if n < 2:
        return x
    noise = rng.normal(size=n - 1) * sigma * np.sqrt(dt)
    phi = 1.0 - theta * dt
    if phi == 0.0:
        x[1:] = noise
        return x
    abs_phi = abs(phi)
    if abs_phi == 1.0:
        block = n - 1
    else:
        log_range = abs(np.log(abs_phi))
        block = max(16, int(np.log(1e4) / log_range) + 1)
        # Never let phi**-block overflow float64, whatever the params.
        block = min(block, max(int(np.log(1e250) / log_range), 1), n - 1)
    carry = 0.0
    for start in range(0, n - 1, block):
        stop = min(start + block, n - 1)
        powers = phi ** np.arange(1, stop - start + 1)
        x[start + 1:stop + 1] = powers * (carry + np.cumsum(noise[start:stop] / powers))
        carry = x[stop]
    return x


def solar_trace(
    duration: float = 43200.0,
    dt: float = 1.0,
    peak_mw: float = 0.027,
    day_length: float = None,
    phase: float = 0.0,
    cloud_theta: float = 0.01,
    cloud_sigma: float = None,
    cloud_depth: float = 4.0,
    cloud_bias: float = 0.5,
    noise_mw: float = 0.0005,
    seed=0,
) -> PowerTrace:
    """Synthetic solar harvesting profile (NREL-trace substitute).

    ``duration`` seconds (default: a 12-hour daylight arc, matching the
    paper's day-scale solar segment) of a half-sine diurnal envelope,
    modulated by cloud occlusion and small sensor noise.  Clouds follow a
    slow Ornstein-Uhlenbeck process squashed through a sigmoid, producing
    the strongly bimodal character of real irradiance data: long clear
    stretches near full power and long deep dips at a few percent of it.
    That variability is load-bearing for the paper's comparison — an
    all-or-nothing baseline only completes inferences during clear
    stretches, while graded exits keep producing results through the dips.

    Power is clipped at zero: outside the daylight arc nothing harvests.
    """
    gen = as_generator(seed)
    n = int(round(duration / dt)) + 1
    t = np.arange(n) * dt
    if day_length is None:
        day_length = duration
    envelope = np.sin(np.pi * (t / day_length + phase))
    envelope = np.clip(envelope, 0.0, None) ** 1.5
    if cloud_sigma is None:
        cloud_sigma = float(np.sqrt(2.0 * cloud_theta))  # unit stationary std
    clouds = _ou_process(n, dt, cloud_theta, cloud_sigma, gen)
    occlusion = 1.0 / (1.0 + np.exp(-cloud_depth * (clouds - cloud_bias)))
    power = peak_mw * envelope * occlusion
    power = power + gen.normal(0.0, noise_mw, size=n)
    return PowerTrace(np.clip(power, 0.0, None), dt, name="solar")


def kinetic_trace(
    duration: float = 3600.0,
    dt: float = 0.1,
    burst_power_mw: float = 0.5,
    burst_rate_hz: float = 0.02,
    burst_length_s: float = 20.0,
    base_mw: float = 0.005,
    seed=0,
) -> PowerTrace:
    """Bursty kinetic harvesting (e.g. footsteps): idle base + active bursts."""
    gen = as_generator(seed)
    n = int(round(duration / dt)) + 1
    power = np.full(n, base_mw)
    t = 0.0
    while t < duration:
        gap = gen.exponential(1.0 / burst_rate_hz) if burst_rate_hz > 0 else duration
        t += gap
        if t >= duration:
            break
        length = gen.exponential(burst_length_s)
        i0 = int(t / dt)
        i1 = min(n, int((t + length) / dt) + 1)
        power[i0:i1] += burst_power_mw * (0.5 + 0.5 * gen.random())
        t += length
    return PowerTrace(power, dt, name="kinetic")


def wind_trace(
    duration: float = 3600.0,
    dt: float = 0.1,
    mean_speed: float = 1.0,
    turbulence: float = 0.35,
    gust_rate_hz: float = 0.005,
    gust_strength: float = 1.2,
    gust_length_s: float = 45.0,
    peak_mw: float = 0.08,
    seed=0,
) -> PowerTrace:
    """Micro wind-turbine harvesting: slow turbulence plus discrete gusts.

    Wind speed is a mean level modulated by an Ornstein-Uhlenbeck
    turbulence process with exponential gust episodes layered on top;
    harvested power follows the cubic wind-power law, normalized so that
    steady ``mean_speed`` wind yields ``peak_mw``/2.  The cubic response
    makes the trace heavy-tailed — long near-calm stretches punctuated by
    power spikes an order of magnitude above the median, a regime between
    solar (slow, bimodal) and kinetic (sparse bursts).
    """
    if mean_speed <= 0:
        raise ConfigError(f"mean_speed must be positive, got {mean_speed}")
    gen = as_generator(seed)
    n = int(round(duration / dt)) + 1
    speed = mean_speed * (1.0 + _ou_process(n, dt, theta=0.05, sigma=turbulence * np.sqrt(0.1), rng=gen))
    t = 0.0
    while t < duration and gust_rate_hz > 0:
        t += gen.exponential(1.0 / gust_rate_hz)
        if t >= duration:
            break
        length = gen.exponential(gust_length_s)
        i0 = int(t / dt)
        i1 = min(n, int((t + length) / dt) + 1)
        # Gusts ramp in and die off (half-sine profile) rather than step.
        profile = np.sin(np.linspace(0.0, np.pi, max(i1 - i0, 1)))
        speed[i0:i1] += gust_strength * mean_speed * (0.5 + 0.5 * gen.random()) * profile
        t += length
    speed = np.clip(speed, 0.0, None)
    power = 0.5 * peak_mw * (speed / mean_speed) ** 3
    return PowerTrace(np.clip(power, 0.0, None), dt, name="wind")


def piezo_trace(
    duration: float = 3600.0,
    dt: float = 0.1,
    peak_mw: float = 0.05,
    duty_cycle: float = 0.5,
    cycle_period_s: float = 120.0,
    amplitude_jitter: float = 0.3,
    base_mw: float = 0.0002,
    seed=0,
) -> PowerTrace:
    """Piezo/vibration harvesting from duty-cycled machinery.

    Models the *envelope* of rectified vibration power (the raw kHz-scale
    oscillation is far below ``dt`` and only its mean power matters to a
    capacitor): the host machine alternates exponentially-distributed on/off
    intervals with mean on-fraction ``duty_cycle``, and while on, harvested
    power is ``peak_mw`` modulated by a slow Ornstein-Uhlenbeck amplitude
    jitter (mount resonance drifting with load).  Off intervals fall to a
    tiny ambient ``base_mw``.
    """
    gen = as_generator(seed)
    if not 0.0 < duty_cycle < 1.0:
        raise ConfigError(f"duty_cycle must be in (0, 1), got {duty_cycle}")
    n = int(round(duration / dt)) + 1
    on = np.zeros(n, dtype=bool)
    mean_on = duty_cycle * cycle_period_s
    mean_off = (1.0 - duty_cycle) * cycle_period_s
    t, machine_on = 0.0, gen.random() < duty_cycle
    while t < duration:
        length = gen.exponential(mean_on if machine_on else mean_off)
        if machine_on:
            i0 = int(t / dt)
            i1 = min(n, int((t + length) / dt) + 1)
            on[i0:i1] = True
        t += length
        machine_on = not machine_on
    jitter = _ou_process(n, dt, theta=0.02, sigma=amplitude_jitter * np.sqrt(0.04), rng=gen)
    power = np.where(on, peak_mw * np.exp(jitter), base_mw)
    return PowerTrace(np.clip(power, 0.0, None), dt, name="piezo")


def rf_trace(
    duration: float = 3600.0,
    dt: float = 0.1,
    mean_mw: float = 0.02,
    fading_sigma: float = 0.3,
    seed=0,
) -> PowerTrace:
    """Weak RF harvesting with log-normal slow fading."""
    gen = as_generator(seed)
    n = int(round(duration / dt)) + 1
    fading = _ou_process(n, dt, theta=0.02, sigma=fading_sigma * np.sqrt(0.04), rng=gen)
    power = mean_mw * np.exp(fading)
    return PowerTrace(np.clip(power, 0.0, None), dt, name="rf")
