"""Event-arrival generators.

The paper's evaluation drops "500 events randomly distributed across the
duration of the EH power trace" — :func:`uniform_random_events`.  Poisson
and bursty arrivals are provided for the runtime-adaptation ablations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_generator


def uniform_random_events(n: int, duration: float, rng=None) -> np.ndarray:
    """``n`` event times drawn uniformly over ``[0, duration)``, sorted."""
    if n < 0:
        raise ConfigError("event count cannot be negative")
    if duration <= 0:
        raise ConfigError("duration must be positive")
    gen = as_generator(rng)
    return np.sort(gen.uniform(0.0, duration, size=n))


def poisson_events(rate_hz: float, duration: float, rng=None) -> np.ndarray:
    """Poisson arrivals at ``rate_hz`` over ``[0, duration)``."""
    if rate_hz < 0:
        raise ConfigError("rate cannot be negative")
    if duration <= 0:
        raise ConfigError("duration must be positive")
    gen = as_generator(rng)
    times = []
    t = 0.0
    while rate_hz > 0:
        t += gen.exponential(1.0 / rate_hz)
        if t >= duration:
            break
        times.append(t)
    return np.asarray(times)


def burst_events(
    num_bursts: int,
    events_per_burst: int,
    duration: float,
    burst_span: float = 10.0,
    rng=None,
) -> np.ndarray:
    """Clustered arrivals: bursts of events within short windows.

    Stresses the energy-reservation behaviour of runtime policies — a
    greedy policy that spends everything on the first event of a burst
    misses the rest.
    """
    if min(num_bursts, events_per_burst) < 0:
        raise ConfigError("counts cannot be negative")
    if duration <= 0 or burst_span <= 0:
        raise ConfigError("duration and burst_span must be positive")
    gen = as_generator(rng)
    centers = gen.uniform(0.0, duration, size=num_bursts)
    times = []
    for c in centers:
        offsets = gen.uniform(0.0, burst_span, size=events_per_burst)
        times.extend(np.clip(c + offsets, 0.0, duration * (1 - 1e-9)))
    return np.sort(np.asarray(times))
