"""Capacitor-style energy storage model.

Intermittent systems buffer harvested energy in a small capacitor and run
one "episode of program execution" per charge (paper Section I).  The model
tracks a charge level in mJ with a charging efficiency (harvest-to-store
loss) and an optional leakage draw.
"""

from __future__ import annotations

from repro.errors import ConfigError, EnergyError


class EnergyStorage:
    """Finite energy buffer with charge efficiency and leakage.

    Parameters
    ----------
    capacity_mj:
        Maximum stored energy.  Charging beyond it is wasted (the real
        capacitor's regulator sheds excess), which is what penalizes
        hoarding energy instead of spending it on inferences.
    efficiency:
        Fraction of harvested energy that reaches the store.
    leakage_mw:
        Constant self-discharge, applied per elapsed second.
    initial_mj:
        Starting charge (defaults to empty).
    """

    def __init__(
        self,
        capacity_mj: float,
        efficiency: float = 0.8,
        leakage_mw: float = 0.0,
        initial_mj: float = 0.0,
    ):
        if capacity_mj <= 0:
            raise ConfigError("capacity must be positive")
        if not 0.0 < efficiency <= 1.0:
            raise ConfigError("efficiency must be in (0, 1]")
        if leakage_mw < 0:
            raise ConfigError("leakage cannot be negative")
        if not 0.0 <= initial_mj <= capacity_mj:
            raise ConfigError("initial charge must be within [0, capacity]")
        self.capacity_mj = float(capacity_mj)
        self.efficiency = float(efficiency)
        self.leakage_mw = float(leakage_mw)
        self._initial_mj = float(initial_mj)
        self.level_mj = float(initial_mj)
        self.total_charged_mj = 0.0
        self.total_drawn_mj = 0.0
        self.total_wasted_mj = 0.0

    def reset(self) -> None:
        """Restore the initial charge and clear the energy ledger."""
        self.level_mj = self._initial_mj
        self.total_charged_mj = 0.0
        self.total_drawn_mj = 0.0
        self.total_wasted_mj = 0.0

    def charge(self, harvested_mj: float) -> float:
        """Store harvested energy; returns the amount actually banked."""
        if harvested_mj < 0:
            raise EnergyError("cannot charge a negative amount")
        banked = harvested_mj * self.efficiency
        room = self.capacity_mj - self.level_mj
        stored = min(banked, room)
        self.level_mj += stored
        self.total_charged_mj += stored
        self.total_wasted_mj += banked - stored
        return stored

    def leak(self, elapsed_s: float) -> float:
        """Apply self-discharge over ``elapsed_s`` seconds."""
        if elapsed_s < 0:
            raise EnergyError("elapsed time cannot be negative")
        lost = min(self.level_mj, self.leakage_mw * elapsed_s)
        self.level_mj -= lost
        return lost

    def can_afford(self, amount_mj: float) -> bool:
        return self.level_mj >= amount_mj - 1e-12

    def draw(self, amount_mj: float) -> None:
        """Consume stored energy; raises :class:`EnergyError` if short."""
        if amount_mj < 0:
            raise EnergyError("cannot draw a negative amount")
        if not self.can_afford(amount_mj):
            raise EnergyError(
                f"insufficient energy: need {amount_mj:.4f} mJ, have {self.level_mj:.4f} mJ"
            )
        self.level_mj = max(0.0, self.level_mj - amount_mj)
        self.total_drawn_mj += amount_mj

    @property
    def fraction_full(self) -> float:
        return self.level_mj / self.capacity_mj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnergyStorage(level={self.level_mj:.3f}/{self.capacity_mj:.3f} mJ, "
            f"eff={self.efficiency})"
        )
