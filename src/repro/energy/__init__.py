"""Energy-harvesting substrate: power traces, storage, and event streams."""

from repro.energy.traces import (
    PowerTrace,
    constant_trace,
    kinetic_trace,
    piezo_trace,
    rf_trace,
    solar_trace,
    trace_from_csv,
    trace_from_samples,
    wind_trace,
)
from repro.energy.storage import EnergyStorage
from repro.energy.events import (
    burst_events,
    poisson_events,
    uniform_random_events,
)

__all__ = [
    "PowerTrace",
    "constant_trace",
    "kinetic_trace",
    "piezo_trace",
    "rf_trace",
    "solar_trace",
    "trace_from_csv",
    "trace_from_samples",
    "wind_trace",
    "EnergyStorage",
    "burst_events",
    "poisson_events",
    "uniform_random_events",
]
