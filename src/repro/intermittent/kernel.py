"""Shared intermittent-execution kernel: scalar and lockstep forms.

SONIC-style execution [9] runs one fixed inference across however many
power cycles the harvested energy dictates: compute while the capacitor
lasts, checkpoint at the shutdown threshold, power off, recharge to the
wakeup threshold, restore, continue.  This module is the single home of
that loop's arithmetic:

* :func:`run_job_scalar` is the per-device Python loop (the former body of
  ``IntermittentExecutionEngine.run_inference``, moved verbatim) — the
  reference the batched form shadows;
* :class:`IntermittentFleetKernel` is its device-axis twin for the batched
  fleet engine (:mod:`repro.sim.batch`): every piece of mutable per-device
  state — checkpoint progress (``work_left``), power state (``on``),
  partial-cycle energy accounting (``consumed`` / ``overhead``), clocks,
  event cursors — lives in a numpy column, and the vector axis of each
  pass is **(device × micro-step)**: every active device advances through
  a *fused run* of consecutive micro-steps (up to :data:`FUSE_HORIZON`
  recharge ``dt``'s or compute slices) per pass, not just one.  Only the
  steps that cannot cross a power boundary fuse — a step that would wake,
  shut down, clamp a ledger ``min``/``max``, or hit the deadline stops
  the run and executes through the verified one-step form instead — so
  the pass count collapses from one-per-micro-step (~3.4k on the profiled
  city-block-128 shape) to the order of power transitions, while every
  committed chain is the scalar fold replayed bit-for-bit
  (``np.cumsum`` over float64 is a strict sequential left fold, so the
  fused prefix reproduces ``t += dt`` / ``level += stored`` exactly).

Setting ``REPRO_KERNEL=compiled`` (see :mod:`repro.utils.kernelmode`)
swaps the chain construction for numba-compiled per-device scalar loops
(:mod:`repro.intermittent.compiled`) with the same stop conditions and an
unbounded horizon; the pure-numpy chains above remain the always-available
fallback and both forms are bit-identical to the scalar reference.

Determinism contract
--------------------
The batched form is **bit-identical** to :func:`run_job_scalar` driven by
:meth:`Simulator._run_intermittent_event`: every ledger operation
(charge / leak / draw, the ``1e-12`` affordability epsilon, the
``min``/``max`` clamps) is replicated elementwise in the scalar operation
order, per-device trace queries reproduce ``PowerTrace._cum_at``'s
interpolation arithmetic over stacked sample/cumulative-energy rows, and
the only random draws (result difficulty and confidence entropy on a
*completed* inference) are consumed from the same per-device streams
through :class:`~repro.utils.rng.DrawBatch`.  Devices never interact, so
only the within-device operation order matters, and the micro-step loop
preserves it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

#: ``miss_reason`` codes in the kernel's packed record arrays; kept equal
#: to the batched engine's codes (see ``_REASONS`` in repro.sim.batch).
REASON_NONE, REASON_BUSY, REASON_ENERGY = 0, 1, 2

#: Work below this is "done" (the scalar loop's termination epsilon).
_WORK_EPS = 1e-12

#: Micro-steps a pure-numpy fused run may commit per pass and lane.  Long
#: recharge runs on the profiled shapes span ~50-250 ``dt``'s between
#: power transitions and saturated compute runs go longer still; 128 is
#: the empirical sweet spot on the profiled city-block shape (64 pays
#: too many passes, 256+ too much wasted tail past a run's first
#: violation).  The compiled form ignores this (it stops exactly at the
#: first violation, horizon-free).
FUSE_HORIZON = 128


@dataclass
class IntermittentRun:
    """Outcome of one intermittent inference."""

    start_time: float
    finish_time: float
    energy_consumed_mj: float  # compute energy (the useful work)
    overhead_energy_mj: float  # checkpoint/restore energy
    power_cycles: int
    completed: bool

    @property
    def latency_s(self) -> float:
        return self.finish_time - self.start_time


def run_job_scalar(
    trace,
    mcu,
    time_step: float,
    energy_mj: float,
    t_start: float,
    storage,
    deadline: float = None,
) -> IntermittentRun:
    """Execute one job needing ``energy_mj`` of compute energy.

    Mutates ``storage`` (harvesting continues during compute and waits).
    Returns an incomplete run if ``deadline`` (default: end of trace)
    arrives first.  This is the scalar reference loop; the batched kernel
    below replicates it operation-for-operation across the device axis.
    """
    if energy_mj < 0:
        raise SimulationError("job energy cannot be negative")
    deadline = trace.duration if deadline is None else deadline
    dt = time_step
    t = t_start
    work_left = energy_mj
    consumed = 0.0
    overhead = 0.0
    cycles = 0
    shutdown_level = mcu.shutdown_threshold * storage.capacity_mj
    wakeup_level = mcu.wakeup_threshold * storage.capacity_mj
    active_power = mcu.active_power_mw
    on = storage.level_mj > shutdown_level  # can start on current charge

    while work_left > _WORK_EPS:
        if t >= deadline:
            return IntermittentRun(t_start, t, consumed, overhead, cycles, False)
        if not on:
            # Power failure: recharge until the wakeup threshold.
            storage.charge(trace.energy_between(t, t + dt))
            storage.leak(dt)
            t += dt
            if storage.level_mj >= wakeup_level:
                on = True
                cycles += 1
                # Restore checkpointed state.
                restore = min(mcu.checkpoint_energy_mj / 2, storage.level_mj)
                storage.draw(restore)
                overhead += restore
                t += mcu.checkpoint_time_s
            continue
        if cycles == 0:
            cycles = 1  # started on the initial charge, no restore cost
        # One compute step: harvest and spend simultaneously.
        step_work = min(work_left, active_power * dt)
        step_time = step_work / active_power
        storage.charge(trace.energy_between(t, t + step_time))
        storage.leak(step_time)
        if not storage.can_afford(step_work):
            step_work = max(0.0, storage.level_mj - _WORK_EPS)
        storage.draw(step_work)
        work_left -= step_work
        consumed += step_work
        t += step_time
        if work_left > _WORK_EPS and storage.level_mj <= shutdown_level:
            # Dying: checkpoint progress before the lights go out.
            save = min(mcu.checkpoint_energy_mj / 2, storage.level_mj)
            storage.draw(save)
            overhead += save
            on = False
    return IntermittentRun(t_start, t, consumed, overhead, cycles, True)


class IntermittentFleetKernel:
    """Lockstep multi-cycle execution for a fleet's intermittent devices.

    Construction stacks the per-device environment — padded trace
    sample/cumulative-energy rows, capacitor parameters, MCU thresholds,
    the fixed job (the profile's only selectable exit) — into columns.
    :meth:`run_episode` then plays one whole episode (the full event
    stream) for every participating device, mutating the engine's shared
    state columns in place and returning packed per-event records.
    """

    def __init__(self, rows, devices, mode: str = "numpy"):
        """``rows`` are engine rows; ``devices`` the matching materialized
        device objects (``trace`` / ``mcu`` / ``storage`` / ``profile`` /
        ``exit_energy`` / ``exit_acc`` attributes, one per row).  ``mode``
        picks the fused-run implementation: ``"numpy"`` (cumsum chains,
        always available) or ``"compiled"`` (numba scalar loops; silently
        degrades to numpy when numba cannot be imported)."""
        self.rows = np.asarray(rows, dtype=np.int64)
        k = len(devices)
        if k != len(self.rows):
            raise SimulationError("rows and devices must align")
        max_n = max(d.trace.samples_mw.size for d in devices)
        self._samples = np.zeros((k, max_n))
        self._cum = np.zeros((k, max_n))
        for i, d in enumerate(devices):
            n = d.trace.samples_mw.size
            self._samples[i, :n] = d.trace.samples_mw
            self._cum[i, :n] = d.trace._cum_energy
        self._n = np.array([d.trace.samples_mw.size for d in devices], np.int64)
        self._dt = np.array([float(d.trace.dt) for d in devices])
        self._duration = np.array([d.trace.duration for d in devices])
        self._cum_total = np.array([d.trace.total_energy_mj for d in devices])
        self._capacity = np.array([d.storage.capacity_mj for d in devices])
        self._efficiency = np.array([d.storage.efficiency for d in devices])
        self._leakage = np.array([d.storage.leakage_mw for d in devices])
        self._shutdown = np.array(
            [d.mcu.shutdown_threshold * d.storage.capacity_mj for d in devices]
        )
        self._wakeup = np.array(
            [d.mcu.wakeup_threshold * d.storage.capacity_mj for d in devices]
        )
        self._active_power = np.array([d.mcu.active_power_mw for d in devices])
        self._ckpt_half = np.array([d.mcu.checkpoint_energy_mj / 2 for d in devices])
        self._ckpt_time = np.array([d.mcu.checkpoint_time_s for d in devices])
        # The SONIC-style job: the profile's last (only) exit, fixed.
        self._job_exit = np.array([d.profile.num_exits - 1 for d in devices], np.int64)
        self._job_energy = np.array(
            [d.exit_energy[-1] for d in devices], dtype=np.float64
        )
        self._job_acc = np.array([d.exit_acc[-1] for d in devices], dtype=np.float64)
        self._no_leak = bool((self._leakage == 0.0).all())
        self._mode = "numpy"
        self._compiled = None
        if mode == "compiled":
            try:
                from repro.intermittent import compiled as _compiled

                if _compiled.HAVE_NUMBA:
                    self._mode = "compiled"
                    self._compiled = _compiled
            except Exception:
                pass  # numba missing/broken: keep the numpy lanes

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------ #
    def _cum_at(self, k: np.ndarray, t: np.ndarray) -> np.ndarray:
        """``PowerTrace._cum_at(_clip_time(t))`` over kernel rows ``k``.

        Same interpolation arithmetic bit-for-bit, including the scalar
        early-return for positions at or past the last sample.
        """
        # Every caller passes simulation times, which are never negative,
        # so the scalar's max(t, 0.0) clip is the identity here.
        tc = np.minimum(t, self._duration[k])
        pos = tc / self._dt[k]
        last = self._n[k] - 1
        past_end = pos >= last
        i = np.minimum(pos.astype(np.int64), last - 1)
        frac = pos - i
        p0 = self._samples[k, i]
        pt = (1 - frac) * p0 + frac * self._samples[k, i + 1]
        partial = self._cum[k, i] + 0.5 * (p0 + pt) * (frac * self._dt[k])
        return np.where(past_end, self._cum_total[k], partial)

    def _energy_between(self, k, t0, t1):
        """``PowerTrace.energy_between`` over kernel rows ``k``.

        Both interval endpoints are evaluated in one stacked
        :meth:`_cum_at` pass — the cumulative query is elementwise, so
        fusing halves the per-call numpy dispatch the micro-step loop
        pays, without touching any lane's arithmetic.
        """
        n = len(k)
        cum = self._cum_at(np.concatenate((k, k)), np.concatenate((t0, t1)))
        return cum[n:] - cum[:n]

    def _charge(self, k, harvested, level, charged, wasted):
        """``EnergyStorage.charge`` elementwise over kernel rows ``k``."""
        banked = harvested * self._efficiency[k]
        stored = np.minimum(banked, self._capacity[k] - level[k])
        level[k] += stored
        charged[k] += stored
        wasted[k] += banked - stored

    def _leak(self, k, elapsed, level, leaked):
        """``EnergyStorage.leak`` elementwise over kernel rows ``k``.

        Skipped outright for leak-free fleets: subtracting the exact 0.0
        the scalar path computes is the identity on non-negative levels.
        """
        if self._no_leak:
            return
        lost = np.minimum(level[k], self._leakage[k] * elapsed)
        level[k] -= lost
        leaked[k] += lost

    # ------------------------------------------------------------------ #
    def run_episode(
        self,
        part: np.ndarray,
        events: np.ndarray,
        cum_at_event: np.ndarray,
        n_events: np.ndarray,
        level: np.ndarray,
        drawn: np.ndarray,
        t_charged: np.ndarray,
        cum_charged: np.ndarray,
        busy_until: np.ndarray,
        draws,
        prof=None,
    ) -> dict:
        """Play one episode for the participating devices.

        ``part`` masks kernel rows; ``events`` / ``cum_at_event`` are
        ``(max_events, k)`` per-device columns; the five state columns are
        ``(k,)`` views the caller owns (mutated in place).  ``draws`` is
        the engine's :class:`~repro.utils.rng.DrawBatch`, indexed by
        *engine* rows.  Returns ``(max_events, k)`` record arrays plus the
        episode's conservation ledger (charged / leaked / wasted sums, for
        the property suite — the scalar path tracks the same totals on
        :class:`~repro.energy.storage.EnergyStorage`).

        ``prof`` is an optional :class:`~repro.obs.profiler.PhaseProfiler`
        tallying micro-step work (passes, lane counts, power-state
        transitions); it never touches ledger state or random streams, so
        results are bit-identical with or without it.
        """
        k_total = len(self.rows)
        max_ev = events.shape[0]
        r_exit = np.full((max_ev, k_total), -1, np.int64)
        r_correct = np.zeros((max_ev, k_total), bool)
        r_latency = np.zeros((max_ev, k_total))
        r_energy = np.zeros((max_ev, k_total))
        r_entropy = np.ones((max_ev, k_total))
        r_reason = np.full((max_ev, k_total), REASON_NONE, np.int8)
        r_cycles = np.ones((max_ev, k_total), np.int64)
        charged = np.zeros(k_total)
        leaked = np.zeros(k_total)
        wasted = np.zeros(k_total)

        ev = np.zeros(k_total, np.int64)
        in_inf = np.zeros(k_total, bool)
        work = np.zeros(k_total)
        consumed = np.zeros(k_total)
        overhead = np.zeros(k_total)
        cycles = np.zeros(k_total, np.int64)
        t = np.zeros(k_total)
        start = np.zeros(k_total)
        on = np.zeros(k_total, bool)

        # Local tallies flushed to ``prof`` once at episode end; the
        # profiling-off path never executes a tally line.
        # ``intermittent.micro_passes`` stays the *logical* scalar-
        # equivalent count (what the pre-fusion kernel's while loop would
        # have iterated): per device it is busy boundaries + closes +
        # micro-steps, whether a step committed inside a fused run or
        # through the one-step form, and the fleet count is the max over
        # devices — so PROFILE comparisons across PRs stay meaningful.
        # ``intermittent.kernel_passes`` is the new *physical* count of
        # fused passes this implementation actually ran.
        n_pass = n_bnd = n_comp = n_rech = n_done = n_dead = 0
        steps_log = np.zeros(k_total, np.int64) if prof is not None else None

        pending = part & (ev < n_events)
        while pending.any():
            if prof is not None:
                n_pass += 1
            # ---- event boundaries: miss check, charge-to-event, job start
            bnd = pending & ~in_inf
            if bnd.any():
                bi = np.nonzero(bnd)[0]
                if prof is not None:
                    n_bnd += bi.size
                te = events[ev[bi], bi]
                busy = te < busy_until[bi]
                if busy.any():
                    mi = bi[busy]
                    r_reason[ev[mi], mi] = REASON_BUSY
                    ev[mi] += 1
                    if prof is not None:
                        steps_log[mi] += 1
                go = bi[~busy]
                if go.size:
                    te_go = te[~busy]
                    ce = cum_at_event[ev[go], go]
                    charging = te_go > t_charged[go]
                    if charging.any():
                        cg = go[charging]
                        inc = np.maximum(ce[charging] - cum_charged[cg], 0.0)
                        self._charge(cg, inc, level, charged, wasted)
                        if not self._no_leak:
                            self._leak(
                                cg,
                                te_go[charging] - t_charged[cg],
                                level,
                                leaked,
                            )
                        t_charged[cg] = te_go[charging]
                        cum_charged[cg] = ce[charging]
                    work[go] = self._job_energy[go]
                    consumed[go] = 0.0
                    overhead[go] = 0.0
                    cycles[go] = 0
                    t[go] = te_go
                    start[go] = te_go
                    on[go] = level[go] > self._shutdown[go]
                    in_inf[go] = True
            # ---- one multi-cycle loop iteration for in-flight inferences
            inf = np.nonzero(in_inf & part)[0]
            if inf.size:
                # Loop-top termination test first, like the scalar while.
                done = work[inf] <= _WORK_EPS
                if done.any():
                    ci = inf[done]
                    if prof is not None:
                        n_done += ci.size
                        steps_log[ci] += 1
                    er = self.rows[ci]
                    difficulty = draws.random(er)
                    correct = difficulty < self._job_acc[ci]
                    entropy = np.empty(len(ci))
                    if correct.any():
                        entropy[correct] = draws.beta(2.0, 8.0, er[correct])
                    wrong = ~correct
                    if wrong.any():
                        entropy[wrong] = draws.beta(5.0, 3.0, er[wrong])
                    e = ev[ci]
                    r_exit[e, ci] = self._job_exit[ci]
                    r_correct[e, ci] = correct
                    r_latency[e, ci] = t[ci] - start[ci]
                    r_energy[e, ci] = consumed[ci] + overhead[ci]
                    r_entropy[e, ci] = entropy
                    r_cycles[e, ci] = cycles[ci]
                    self._close_inference(
                        ci, t, busy_until, t_charged, cum_charged, in_inf, ev
                    )
                act = inf[~done]
                if act.size:
                    late = t[act] >= self._duration[act]
                    if late.any():
                        di = act[late]
                        if prof is not None:
                            n_dead += di.size
                            steps_log[di] += 1
                        e = ev[di]
                        r_reason[e, di] = REASON_ENERGY
                        r_latency[e, di] = t[di] - start[di]
                        r_cycles[e, di] = cycles[di]
                        self._close_inference(
                            di, t, busy_until, t_charged, cum_charged, in_inf, ev
                        )
                    run = act[~late]
                    if run.size:
                        on_run = on[run]
                        off = run[~on_run]
                        if off.size:
                            # Fused run: commit every consecutive recharge
                            # dt that cannot wake, clamp, or cross the
                            # deadline, then take the stopping step (wake /
                            # clamp handling) through the one-step form.
                            j_off = self._advance_recharge(
                                off, level, t, charged, leaked, wasted
                            )
                            if prof is not None:
                                n_rech += int(j_off.sum())
                                steps_log[off] += j_off
                            ps = off[t[off] < self._duration[off]]
                            if ps.size:
                                if prof is not None:
                                    n_rech += ps.size
                                    steps_log[ps] += 1
                                self._recharge_step(
                                    ps,
                                    level,
                                    drawn,
                                    t,
                                    on,
                                    cycles,
                                    overhead,
                                    charged,
                                    leaked,
                                    wasted,
                                    prof=prof,
                                )
                        comp = run[on_run]
                        if comp.size:
                            # Same shape for compute slices: the fused run
                            # stops before any partial slice, affordability
                            # clamp, or shutdown checkpoint.
                            j_comp = self._advance_compute(
                                comp, level, drawn, t, cycles, work,
                                consumed, charged, leaked, wasted,
                            )
                            if prof is not None:
                                n_comp += int(j_comp.sum())
                                steps_log[comp] += j_comp
                            cs = comp[
                                (work[comp] > _WORK_EPS)
                                & (t[comp] < self._duration[comp])
                            ]
                            if cs.size:
                                if prof is not None:
                                    n_comp += cs.size
                                    steps_log[cs] += 1
                                self._compute_step(
                                    cs,
                                    level,
                                    drawn,
                                    t,
                                    on,
                                    cycles,
                                    work,
                                    consumed,
                                    overhead,
                                    charged,
                                    leaked,
                                    wasted,
                                    prof=prof,
                                )
            pending = part & (in_inf | (ev < n_events))
        if prof is not None:
            prof.tally("intermittent.micro_passes", int(steps_log.max()))
            prof.tally("intermittent.kernel_passes", n_pass)
            prof.tally("intermittent.boundary_lanes", int(n_bnd))
            prof.tally("intermittent.compute_lanes", int(n_comp))
            prof.tally("intermittent.recharge_lanes", int(n_rech))
            prof.tally("intermittent.completed", int(n_done))
            prof.tally("intermittent.deadline_misses", int(n_dead))
        return {
            "exit": r_exit,
            "correct": r_correct,
            "latency": r_latency,
            "energy": r_energy,
            "entropy": r_entropy,
            "reason": r_reason,
            "cycles": r_cycles,
            "charged": charged,
            "leaked": leaked,
            "wasted": wasted,
        }

    # ------------------------------------------------------------------ #
    def _close_inference(
        self, k, t, busy_until, t_charged, cum_charged, in_inf, ev
    ) -> None:
        """Inference over (completed or deadline): resume the ledger at
        the finish time, exactly like the scalar simulator does."""
        busy_until[k] = t[k]
        t_charged[k] = t[k]
        cum_charged[k] = self._cum_at(k, t[k])
        in_inf[k] = False
        ev[k] += 1

    # ------------------------------------------------------------------ #
    # Fused multi-step runs.
    #
    # ``np.cumsum`` over a float64 row is a strict sequential left fold,
    # so a committed chain value is bit-for-bit the scalar accumulator
    # (``t += dt``, ``level += stored``, ``work -= step_work``) after the
    # same number of iterations; ``x + (-w)`` is IEEE-identical to
    # ``x - w``.  A chain is only committed up to (excluding) the first
    # step where any scalar clamp or transition would fire — capacity
    # ``min``, leak ``min``, the 1e-12 affordability epsilon / ``max(0)``
    # draw guard, wake/shutdown threshold crossings, partial compute
    # slices, the loop-top deadline check — and that stopping step then
    # runs through the verified one-step form, which guarantees progress
    # even when a run fuses zero steps.
    # ------------------------------------------------------------------ #
    def _advance_recharge(
        self, off, level, t, charged, leaked, wasted
    ) -> np.ndarray:
        """Commit each powered-off lane's boring recharge prefix.

        Mutates ``level`` / ``t`` / ``charged`` / ``leaked`` (and, on the
        compiled path only, ``wasted``) in place and returns the per-lane
        number of committed micro-steps (int64).  The numpy lanes stop at
        any capacity clamp so an unclamped committed step banks
        everything and never touches ``wasted``; the compiled loop folds
        the clamp arithmetic inline and keeps going.  ``drawn`` /
        ``overhead`` are untouched either way: recharge draws nothing
        until the wake step, which always runs through the one-step form.
        """
        if self._mode == "compiled":
            return self._compiled.recharge_runs(
                off, t, level, charged, leaked, wasted, self._samples,
                self._cum, self._n, self._dt, self._duration,
                self._cum_total, self._capacity, self._efficiency,
                self._leakage, self._wakeup,
            )
        horizon = FUSE_HORIZON
        n = off.size
        dt = self._dt[off]
        tch = np.empty((n, horizon + 1))
        tch[:, 0] = t[off]
        tch[:, 1:] = dt[:, None]
        np.cumsum(tch, axis=1, out=tch)
        cum = self._cum_at(
            np.repeat(off, horizon + 1), tch.ravel()
        ).reshape(n, horizon + 1)
        banked = (cum[:, 1:] - cum[:, :-1]) * self._efficiency[off, None]
        lost = (self._leakage[off] * dt)[:, None]
        # Interleaved level chain [l0, +banked_1, -lost, +banked_2, ...]:
        # odd columns are post-charge, even columns post-leak states.
        chain = np.empty((n, 2 * horizon + 1))
        chain[:, 0] = level[off]
        chain[:, 1::2] = banked
        chain[:, 2::2] = -lost
        np.cumsum(chain, axis=1, out=chain)
        post_charge = chain[:, 1::2]
        post_leak = chain[:, 2::2]
        prev = chain[:, 0:-1:2]  # post-leak level entering each step
        viol = banked > self._capacity[off, None] - prev  # capacity clamp
        viol |= post_charge < lost  # leak min() clamp (empty store)
        viol |= post_leak >= self._wakeup[off, None]  # wake transition
        viol |= tch[:, :-1] >= self._duration[off, None]  # deadline check
        j = np.where(viol.any(axis=1), viol.argmax(axis=1), horizon)
        lanes = np.arange(n)
        level[off] = chain[lanes, 2 * j]
        t[off] = tch[lanes, j]
        # Charged + leaked ledgers share one stacked cumsum dispatch; the
        # leaked row is dropped entirely for leak-free fleets.
        rows = n if self._no_leak else 2 * n
        led = np.empty((rows, horizon + 1))
        led[:n, 0] = charged[off]
        led[:n, 1:] = banked
        if not self._no_leak:
            led[n:, 0] = leaked[off]
            led[n:, 1:] = lost
        np.cumsum(led, axis=1, out=led)
        charged[off] = led[lanes, j]
        if not self._no_leak:
            leaked[off] = led[n + lanes, j]
        return j

    def _advance_compute(
        self, comp, level, drawn, t, cycles, work, consumed, charged,
        leaked, wasted
    ) -> np.ndarray:
        """Commit each powered-on lane's boring full-slice prefix.

        Mutates the state columns in place and returns committed
        micro-steps per lane.  ``overhead`` is untouched: a boring slice
        never checkpoints.  Two fusable regimes exist:

        * **free** — the capacity ``min`` never clamps, so the level is a
          plain interleaved cumsum chain and ``wasted`` stays untouched;
        * **saturated** — harvest outpaces draw and *every* charge
          clamps.  After the (per-step) transient, the post-draw level
          reaches an exact bitwise fixed point ``L`` where each step
          stores ``room = capacity - L``, leaks ``l``, draws a full
          slice, and lands back on ``L`` — all per-lane constants, so
          the ledgers are cumsum chains of constants (``wasted`` gets
          the varying ``banked - room``) and the level provably never
          moves.  Without this regime a saturated device pays one kernel
          pass per micro-step and re-serializes the whole fleet.
        """
        fresh = comp[cycles[comp] == 0]
        if fresh.size:
            cycles[fresh] = 1  # started on the initial charge, no restore
        if self._mode == "compiled":
            return self._compiled.compute_runs(
                comp, t, level, drawn, work, consumed, charged, leaked,
                wasted, self._samples, self._cum, self._n, self._dt,
                self._duration, self._cum_total, self._capacity,
                self._efficiency, self._leakage, self._shutdown,
                self._active_power,
            )
        horizon = FUSE_HORIZON
        n = comp.size
        step_work = self._active_power[comp] * self._dt[comp]
        step_time = step_work / self._active_power[comp]
        sw = step_work[:, None]
        # Time + remaining-work chains share one stacked cumsum dispatch.
        tw = np.empty((2 * n, horizon + 1))
        tw[:n, 0] = t[comp]
        tw[:n, 1:] = step_time[:, None]
        tw[n:, 0] = work[comp]
        tw[n:, 1:] = -sw
        np.cumsum(tw, axis=1, out=tw)
        tch = tw[:n]
        wch = tw[n:]
        cum = self._cum_at(
            np.repeat(comp, horizon + 1), tch.ravel()
        ).reshape(n, horizon + 1)
        banked = (cum[:, 1:] - cum[:, :-1]) * self._efficiency[comp, None]
        lost = (self._leakage[comp] * step_time)[:, None]
        # Free-regime level chain with three slots per step.
        chain = np.empty((n, 3 * horizon + 1))
        chain[:, 0] = level[comp]
        chain[:, 1::3] = banked
        chain[:, 2::3] = -lost
        chain[:, 3::3] = -sw
        np.cumsum(chain, axis=1, out=chain)
        post_charge = chain[:, 1::3]
        post_leak = chain[:, 2::3]
        post_draw = chain[:, 3::3]
        prev = chain[:, 0:-1:3]  # post-draw level entering each step
        late = tch[:, :-1] >= self._duration[comp, None]  # deadline check
        partial = wch[:, :-1] < sw  # partial (or finished) slice
        viol = partial | late
        viol |= banked > self._capacity[comp, None] - prev  # capacity clamp
        viol |= post_charge < lost  # leak min() clamp
        viol |= post_leak < sw  # affordability epsilon / max(0) draw guard
        viol |= (wch[:, 1:] > _WORK_EPS) & (
            post_draw <= self._shutdown[comp, None]
        )  # shutdown transition
        j = np.where(viol.any(axis=1), viol.argmax(axis=1), horizon)
        # Saturated regime: replay one clamped scalar step from the
        # entering level; a lane whose post-draw level lands exactly back
        # on it is at the fixed point and fuses on constants.
        lvl0 = level[comp]
        room = self._capacity[comp] - lvl0
        sat_charge = lvl0 + room
        l1 = lost[:, 0]
        sat_leak = sat_charge - l1
        sat_draw = sat_leak - step_work
        fp = (banked[:, 0] > room) & (sat_charge >= l1)
        fp &= (sat_leak >= step_work) & (sat_draw == lvl0)
        has_fp = bool(fp.any())
        if has_fp:
            sviol = partial | late
            sviol |= banked < room[:, None]  # clamp releases: regime ends
            sviol |= (wch[:, 1:] > _WORK_EPS) & (
                sat_draw <= self._shutdown[comp]
            )[:, None]  # shutdown at the fixed point
            j_sat = np.where(sviol.any(axis=1), sviol.argmax(axis=1), horizon)
            j = np.where(fp, j_sat, j)
        lanes = np.arange(n)
        level[comp] = np.where(fp, lvl0, chain[lanes, 3 * j])
        t[comp] = tch[lanes, j]
        work[comp] = wch[lanes, j]
        # Three-to-five ledgers, one stacked cumsum: drawn/consumed add
        # the full slice, charged the (possibly clamped) stored energy,
        # leaked (when the fleet leaks at all) the constant loss, and
        # wasted — saturated lanes only — the clamped-off
        # ``banked - room``.
        m = 3 + (not self._no_leak) + has_fp
        led = np.empty((m * n, horizon + 1))
        led[:n, 0] = drawn[comp]
        led[:n, 1:] = sw
        led[n:2 * n, 0] = consumed[comp]
        led[n:2 * n, 1:] = sw
        led[2 * n:3 * n, 0] = charged[comp]
        led[2 * n:3 * n, 1:] = (
            np.where(fp[:, None], room[:, None], banked) if has_fp else banked
        )
        row = 3 * n
        if not self._no_leak:
            led[row:row + n, 0] = leaked[comp]
            led[row:row + n, 1:] = lost
            row += n
        if has_fp:
            led[row:, 0] = wasted[comp]
            led[row:, 1:] = banked - room[:, None]
        np.cumsum(led, axis=1, out=led)
        drawn[comp] = led[lanes, j]
        consumed[comp] = led[n + lanes, j]
        charged[comp] = led[2 * n + lanes, j]
        if not self._no_leak:
            leaked[comp] = led[3 * n + lanes, j]
        if has_fp:
            wasted[comp] = np.where(
                fp, led[(m - 1) * n + lanes, j], wasted[comp]
            )
        return j

    def _recharge_step(
        self,
        off,
        level,
        drawn,
        t,
        on,
        cycles,
        overhead,
        charged,
        leaked,
        wasted,
        prof=None,
    ) -> None:
        """One powered-off ``dt``: harvest, leak, maybe wake + restore."""
        h = self._energy_between(off, t[off], t[off] + self._dt[off])
        self._charge(off, h, level, charged, wasted)
        self._leak(off, self._dt[off], level, leaked)
        t[off] += self._dt[off]
        wake = off[level[off] >= self._wakeup[off]]
        if wake.size:
            if prof is not None:
                prof.tally("intermittent.wake_transitions", int(wake.size))
            on[wake] = True
            cycles[wake] += 1
            restore = np.minimum(self._ckpt_half[wake], level[wake])
            level[wake] = np.maximum(0.0, level[wake] - restore)
            drawn[wake] += restore
            overhead[wake] += restore
            t[wake] += self._ckpt_time[wake]

    def _compute_step(
        self,
        comp,
        level,
        drawn,
        t,
        on,
        cycles,
        work,
        consumed,
        overhead,
        charged,
        leaked,
        wasted,
        prof=None,
    ) -> None:
        """One powered-on compute slice: harvest while spending, then
        checkpoint and power down if the charge dipped to shutdown."""
        fresh = comp[cycles[comp] == 0]
        if fresh.size:
            cycles[fresh] = 1  # started on the initial charge, no restore
        step_work = np.minimum(work[comp], self._active_power[comp] * self._dt[comp])
        step_time = step_work / self._active_power[comp]
        h = self._energy_between(comp, t[comp], t[comp] + step_time)
        self._charge(comp, h, level, charged, wasted)
        self._leak(comp, step_time, level, leaked)
        short = ~(level[comp] >= step_work - _WORK_EPS)
        if short.any():
            step_work = np.where(
                short, np.maximum(0.0, level[comp] - _WORK_EPS), step_work
            )
        level[comp] = np.maximum(0.0, level[comp] - step_work)
        drawn[comp] += step_work
        work[comp] -= step_work
        consumed[comp] += step_work
        t[comp] += step_time
        dying = comp[(work[comp] > _WORK_EPS) & (level[comp] <= self._shutdown[comp])]
        if dying.size:
            if prof is not None:
                prof.tally("intermittent.shutdown_transitions", int(dying.size))
            save = np.minimum(self._ckpt_half[dying], level[dying])
            level[dying] = np.maximum(0.0, level[dying] - save)
            drawn[dying] += save
            overhead[dying] += save
            on[dying] = False
