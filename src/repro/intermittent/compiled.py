"""numba ``@njit`` forms of the intermittent kernel's fused runs.

Imported lazily by :class:`~repro.intermittent.kernel
.IntermittentFleetKernel` only when ``REPRO_KERNEL=compiled`` resolves,
and only used when :data:`HAVE_NUMBA` is true — numba is an optional
dependency and this module must import cleanly without it.

Each function replays the *scalar* micro-step arithmetic per lane —
the identical sequence of IEEE-754 operations as ``run_job_scalar`` /
``EnergyStorage`` — so the results are bit-for-bit the reference's.
Unlike the numpy chains, the compiled loops fold the capacity and leak
``min`` clamps inline and are horizon-free: a run stops only at steps
the caller's verified one-step form must handle (wake and shutdown
transitions, partial or unaffordable compute slices) or at the episode
deadline.  The kernel therefore takes *fewer physical passes* under
``compiled`` than under ``numpy`` (``intermittent.kernel_passes``
shrinks) while every logical tally — ``intermittent.micro_passes``,
lane counters, transitions — stays identical.

No ``fastmath``: reassociation would break bit-identity.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the numpy lanes take over
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Decorator stand-in so the module imports without numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


_WORK_EPS = 1e-12


@njit(cache=True)
def _cum_at_scalar(k, t, samples, cum, n, dt, duration, cum_total):
    """Scalar ``PowerTrace._cum_at(_clip_time(t))`` for kernel row ``k``."""
    tc = t if t < duration[k] else duration[k]
    pos = tc / dt[k]
    last = n[k] - 1
    if pos >= last:
        return cum_total[k]
    i = int(pos)
    frac = pos - i
    p0 = samples[k, i]
    pt = (1.0 - frac) * p0 + frac * samples[k, i + 1]
    return cum[k, i] + 0.5 * (p0 + pt) * (frac * dt[k])


@njit(cache=True)
def recharge_runs(
    off, t, level, charged, leaked, wasted, samples, cum, n, dt,
    duration, cum_total, capacity, efficiency, leakage, wakeup,
):
    """Advance every powered-off lane to its wake step or deadline.

    Commits harvest/leak micro-steps (clamps folded inline) and returns
    the committed step count per lane; the step that would cross the
    wake threshold is left for the caller's one-step form.
    """
    steps = np.zeros(off.size, np.int64)
    for idx in range(off.size):
        k = off[idx]
        d = dt[k]
        dur = duration[k]
        cap = capacity[k]
        eff = efficiency[k]
        lps = leakage[k] * d
        wake = wakeup[k]
        tk = t[k]
        lv = level[k]
        ch = charged[k]
        lk = leaked[k]
        ws = wasted[k]
        c0 = _cum_at_scalar(k, tk, samples, cum, n, dt, duration, cum_total)
        while tk < dur:
            t1 = tk + d
            c1 = _cum_at_scalar(
                k, t1, samples, cum, n, dt, duration, cum_total
            )
            banked = (c1 - c0) * eff
            room = cap - lv
            stored = banked if banked < room else room
            lv2 = lv + stored
            lost = lv2 if lv2 < lps else lps
            lv3 = lv2 - lost
            if lv3 >= wake:
                break  # wake transition: one-step form restores + tallies
            lv = lv3
            ch = ch + stored
            lk = lk + lost
            ws = ws + (banked - stored)
            tk = t1
            c0 = c1
            steps[idx] += 1
        t[k] = tk
        level[k] = lv
        charged[k] = ch
        leaked[k] = lk
        wasted[k] = ws
    return steps


@njit(cache=True)
def compute_runs(
    comp, t, level, drawn, work, consumed, charged, leaked, wasted,
    samples, cum, n, dt, duration, cum_total, capacity, efficiency,
    leakage, shutdown, active_power,
):
    """Advance every powered-on lane through its full-slice steps.

    Commits boring compute slices (clamps folded inline) and returns the
    committed step count per lane; partial slices, unaffordable slices,
    and the shutdown-checkpoint step run through the one-step form.
    """
    steps = np.zeros(comp.size, np.int64)
    for idx in range(comp.size):
        k = comp[idx]
        ap = active_power[k]
        sw = ap * dt[k]
        st = sw / ap
        dur = duration[k]
        cap = capacity[k]
        eff = efficiency[k]
        lps = leakage[k] * st
        shut = shutdown[k]
        tk = t[k]
        lv = level[k]
        dr = drawn[k]
        wrem = work[k]
        cons = consumed[k]
        ch = charged[k]
        lk = leaked[k]
        ws = wasted[k]
        c0 = _cum_at_scalar(k, tk, samples, cum, n, dt, duration, cum_total)
        while tk < dur and wrem >= sw:
            t1 = tk + st
            c1 = _cum_at_scalar(
                k, t1, samples, cum, n, dt, duration, cum_total
            )
            banked = (c1 - c0) * eff
            room = cap - lv
            stored = banked if banked < room else room
            lv2 = lv + stored
            lost = lv2 if lv2 < lps else lps
            lv3 = lv2 - lost
            if not (lv3 >= sw - _WORK_EPS):
                break  # short slice: one-step form clips the draw
            lv4 = lv3 - sw
            if lv4 < 0.0:
                lv4 = 0.0  # the scalar's max(0, ·) affordability clamp
            w2 = wrem - sw
            if w2 > _WORK_EPS and lv4 <= shut:
                break  # shutdown transition: one-step form checkpoints
            lv = lv4
            dr = dr + sw
            wrem = w2
            cons = cons + sw
            ch = ch + stored
            lk = lk + lost
            ws = ws + (banked - stored)
            tk = t1
            c0 = c1
            steps[idx] += 1
        t[k] = tk
        level[k] = lv
        drawn[k] = dr
        work[k] = wrem
        consumed[k] = cons
        charged[k] = ch
        leaked[k] = lk
        wasted[k] = ws
    return steps
