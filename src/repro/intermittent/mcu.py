"""Microcontroller cost model.

The paper targets a TI MSP432 and reduces the hardware to a small set of
constants: energy per MFLOP (1.5 mJ, Section V-A), effective inference
throughput (FLOPs are "the proxy for the per-inference latency"), and the
storage budget driving compression (16 KB weights).  :data:`MSP432`
packages defaults in that regime; all experiments take an explicit
``MCUSpec`` so ablations can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class MCUSpec:
    """Static cost model of an energy-harvesting-powered MCU."""

    name: str = "mcu"
    #: Energy per million FLOPs (mJ).  Paper Section V-A: 1.5 mJ/MFLOP.
    energy_per_mflop_mj: float = 1.5
    #: Sustained inference throughput in MFLOPs per second.  Sets the
    #: compute-time component of latency; 0.05 MFLOP/s puts single
    #: inferences in the seconds range, consistent with the paper's
    #: 1-second time units and SONIC-scale latencies.
    throughput_mflops: float = 0.05
    #: Weight-storage budget in KB (paper: 16 KB FRAM for weights).
    weight_storage_kb: float = 16.0
    #: Energy overhead of one checkpoint/restore pair across a power
    #: failure (SONIC-style task state saving into FRAM).
    checkpoint_energy_mj: float = 0.02
    #: Wall-clock overhead of one checkpoint/restore pair (s).
    checkpoint_time_s: float = 0.2
    #: Storage level (fraction of capacity) at which the device can turn
    #: on and resume after a power failure.
    wakeup_threshold: float = 0.95
    #: Storage level (fraction) at which the device must power down.
    shutdown_threshold: float = 0.05

    def __post_init__(self):
        if self.energy_per_mflop_mj <= 0:
            raise ConfigError("energy_per_mflop_mj must be positive")
        if self.throughput_mflops <= 0:
            raise ConfigError("throughput_mflops must be positive")
        if self.weight_storage_kb <= 0:
            raise ConfigError("weight_storage_kb must be positive")
        if not 0.0 <= self.shutdown_threshold < self.wakeup_threshold <= 1.0:
            raise ConfigError("need 0 <= shutdown < wakeup <= 1")

    def inference_energy_mj(self, flops: float) -> float:
        """Energy of a forward pass of ``flops`` FLOPs."""
        return flops / 1e6 * self.energy_per_mflop_mj

    def inference_time_s(self, flops: float) -> float:
        """Compute time of a forward pass of ``flops`` FLOPs."""
        return flops / 1e6 / self.throughput_mflops

    @property
    def active_power_mw(self) -> float:
        """Power draw while computing (energy rate at full throughput)."""
        return self.energy_per_mflop_mj * self.throughput_mflops


#: Default MSP432-class device used throughout the reproduction.
MSP432 = MCUSpec(name="MSP432")
