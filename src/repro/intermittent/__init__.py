"""Intermittent-computing substrate: MCU model and SONIC-style execution."""

from repro.intermittent.mcu import MCUSpec, MSP432
from repro.intermittent.execution import (
    IntermittentExecutionEngine,
    IntermittentRun,
)

__all__ = ["MCUSpec", "MSP432", "IntermittentExecutionEngine", "IntermittentRun"]
