"""Intermittent-computing substrate: MCU model and SONIC-style execution."""

from repro.intermittent.mcu import MCUSpec, MSP432
from repro.intermittent.execution import (
    IntermittentExecutionEngine,
    IntermittentRun,
)
from repro.intermittent.kernel import IntermittentFleetKernel, run_job_scalar

__all__ = [
    "MCUSpec",
    "MSP432",
    "IntermittentExecutionEngine",
    "IntermittentRun",
    "IntermittentFleetKernel",
    "run_job_scalar",
]
