"""SONIC-style intermittent execution across power failures.

Gobieski et al. [9] run one DNN inference over however many power cycles
the harvested energy dictates: the device computes while the capacitor
lasts, checkpoints its progress into nonvolatile memory when the charge
dips to the shutdown threshold, powers off, recharges, restores, and
continues.  This engine reproduces that behaviour so the paper's baseline
latency/miss characteristics (indefinite multi-cycle waits under weak
harvesting) emerge from the same mechanics.

The loop itself lives in :mod:`repro.intermittent.kernel`
(:func:`~repro.intermittent.kernel.run_job_scalar`), which is also the
bit-identity reference for the batched fleet engine's vectorized form
(:class:`~repro.intermittent.kernel.IntermittentFleetKernel`) — this
class is the per-device driver the simulator talks to.

The paper's own approach never needs this engine for a *selected* exit —
its exit selection guarantees completion within the current charge — but
the engine is also what makes the "wait for enough energy" comparison
concrete.
"""

from __future__ import annotations

from repro.energy.storage import EnergyStorage
from repro.energy.traces import PowerTrace
from repro.errors import SimulationError
from repro.intermittent.kernel import IntermittentRun, run_job_scalar
from repro.intermittent.mcu import MCUSpec

__all__ = ["IntermittentExecutionEngine", "IntermittentRun"]


class IntermittentExecutionEngine:
    """Runs fixed-energy jobs across power cycles against a trace."""

    def __init__(self, trace: PowerTrace, mcu: MCUSpec, time_step: float = None):
        self.trace = trace
        self.mcu = mcu
        self.time_step = time_step if time_step is not None else trace.dt
        if self.time_step <= 0:
            raise SimulationError("time step must be positive")

    def run_inference(
        self,
        energy_mj: float,
        t_start: float,
        storage: EnergyStorage,
        deadline: float = None,
    ) -> IntermittentRun:
        """Execute a job needing ``energy_mj`` of compute energy.

        Mutates ``storage`` (harvesting continues during compute and
        waits).  Returns an incomplete run if ``deadline`` (default: end
        of trace) arrives first.
        """
        return run_job_scalar(
            self.trace, self.mcu, self.time_step, energy_mj, t_start, storage,
            deadline=deadline,
        )
