"""SONIC-style intermittent execution across power failures.

Gobieski et al. [9] run one DNN inference over however many power cycles
the harvested energy dictates: the device computes while the capacitor
lasts, checkpoints its progress into nonvolatile memory when the charge
dips to the shutdown threshold, powers off, recharges, restores, and
continues.  This engine reproduces that behaviour so the paper's baseline
latency/miss characteristics (indefinite multi-cycle waits under weak
harvesting) emerge from the same mechanics.

The paper's own approach never needs this engine for a *selected* exit —
its exit selection guarantees completion within the current charge — but
the engine is also what makes the "wait for enough energy" comparison
concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.storage import EnergyStorage
from repro.energy.traces import PowerTrace
from repro.errors import SimulationError
from repro.intermittent.mcu import MCUSpec


@dataclass
class IntermittentRun:
    """Outcome of one intermittent inference."""

    start_time: float
    finish_time: float
    energy_consumed_mj: float      # compute energy (the useful work)
    overhead_energy_mj: float      # checkpoint/restore energy
    power_cycles: int
    completed: bool

    @property
    def latency_s(self) -> float:
        return self.finish_time - self.start_time


class IntermittentExecutionEngine:
    """Runs fixed-energy jobs across power cycles against a trace."""

    def __init__(self, trace: PowerTrace, mcu: MCUSpec, time_step: float = None):
        self.trace = trace
        self.mcu = mcu
        self.time_step = time_step if time_step is not None else trace.dt
        if self.time_step <= 0:
            raise SimulationError("time step must be positive")

    def run_inference(
        self,
        energy_mj: float,
        t_start: float,
        storage: EnergyStorage,
        deadline: float = None,
    ) -> IntermittentRun:
        """Execute a job needing ``energy_mj`` of compute energy.

        Mutates ``storage`` (harvesting continues during compute and
        waits).  Returns an incomplete run if ``deadline`` (default: end
        of trace) arrives first.
        """
        if energy_mj < 0:
            raise SimulationError("job energy cannot be negative")
        deadline = self.trace.duration if deadline is None else deadline
        dt = self.time_step
        t = t_start
        work_left = energy_mj
        consumed = 0.0
        overhead = 0.0
        cycles = 0
        shutdown_level = self.mcu.shutdown_threshold * storage.capacity_mj
        wakeup_level = self.mcu.wakeup_threshold * storage.capacity_mj
        active_power = self.mcu.active_power_mw
        on = storage.level_mj > shutdown_level  # can start on current charge

        while work_left > 1e-12:
            if t >= deadline:
                return IntermittentRun(t_start, t, consumed, overhead, cycles, False)
            if not on:
                # Power failure: recharge until the wakeup threshold.
                storage.charge(self.trace.energy_between(t, t + dt))
                storage.leak(dt)
                t += dt
                if storage.level_mj >= wakeup_level:
                    on = True
                    cycles += 1
                    # Restore checkpointed state.
                    restore = min(self.mcu.checkpoint_energy_mj / 2, storage.level_mj)
                    storage.draw(restore)
                    overhead += restore
                    t += self.mcu.checkpoint_time_s
                continue
            if cycles == 0:
                cycles = 1  # started on the initial charge, no restore cost
            # One compute step: harvest and spend simultaneously.
            step_work = min(work_left, active_power * dt)
            step_time = step_work / active_power
            storage.charge(self.trace.energy_between(t, t + step_time))
            storage.leak(step_time)
            if not storage.can_afford(step_work):
                step_work = max(0.0, storage.level_mj - 1e-12)
            storage.draw(step_work)
            work_left -= step_work
            consumed += step_work
            t += step_time
            if work_left > 1e-12 and storage.level_mj <= shutdown_level:
                # Dying: checkpoint progress before the lights go out.
                save = min(self.mcu.checkpoint_energy_mj / 2, storage.level_mj)
                storage.draw(save)
                overhead += save
                on = False
        return IntermittentRun(t_start, t, consumed, overhead, cycles, True)
