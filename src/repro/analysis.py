"""Result analysis helpers: ASCII figures and parameter sweeps.

The benchmark harness prints paper-vs-measured tables; this module adds
terminal-friendly bar charts and learning-curve sparklines for quick
visual comparison (no plotting dependencies in this environment), plus a
small sweep utility used by the ablation studies and examples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def bar_chart(values: dict, width: int = 40, fmt: str = "{:.3f}", title: str = "") -> str:
    """Render a labelled horizontal bar chart as a string.

    ``values`` maps label -> non-negative number.  Bars are scaled to the
    maximum value; zero-max charts render empty bars.
    """
    if not values:
        raise ConfigError("bar_chart needs at least one value")
    if width < 1:
        raise ConfigError("width must be positive")
    numbers = {k: float(v) for k, v in values.items()}
    if any(v < 0 for v in numbers.values()):
        raise ConfigError("bar_chart values must be non-negative")
    peak = max(numbers.values())
    label_w = max(len(str(k)) for k in numbers)
    lines = [f"== {title} =="] if title else []
    for label, value in numbers.items():
        filled = int(round(width * (value / peak))) if peak > 0 else 0
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{str(label).ljust(label_w)} |{bar}| " + fmt.format(value))
    return "\n".join(lines)


def sparkline(series, width: int = 60) -> str:
    """Compress a numeric series into a one-line block-character graph."""
    blocks = " _.-=+*#%@"
    series = np.asarray(list(series), dtype=np.float64)
    if series.size == 0:
        raise ConfigError("sparkline needs a non-empty series")
    if series.size > width:
        # Average into `width` buckets.
        edges = np.linspace(0, series.size, width + 1).astype(int)
        series = np.array([series[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    lo, hi = float(series.min()), float(series.max())
    if hi - lo < 1e-12:
        return blocks[len(blocks) // 2] * series.size
    idx = ((series - lo) / (hi - lo) * (len(blocks) - 1)).round().astype(int)
    return "".join(blocks[i] for i in idx)


def learning_curve(results, metric: str = "average_accuracy", width: int = 60) -> str:
    """One-line visualization of a list of SimulationResults over episodes."""
    values = [getattr(r, metric) for r in results]
    line = sparkline(values, width)
    return f"{metric}: [{line}]  {values[0]:.3f} -> {values[-1]:.3f}"


def sweep(fn, grid: dict):
    """Evaluate ``fn(**point)`` over the cartesian product of ``grid``.

    ``grid`` maps parameter name -> list of values.  Returns a list of
    ``(point_dict, result)`` pairs in deterministic order.
    """
    if not grid:
        raise ConfigError("sweep needs a non-empty grid")
    names = sorted(grid)
    out = []

    def recurse(i, point):
        if i == len(names):
            out.append((dict(point), fn(**point)))
            return
        name = names[i]
        for value in grid[name]:
            point[name] = value
            recurse(i + 1, point)
        del point[name]

    recurse(0, {})
    return out


def compare_to_paper(measured: dict, paper: dict) -> str:
    """Tabulate measured vs paper values with the measured/paper ratio."""
    keys = [k for k in paper if k in measured]
    if not keys:
        raise ConfigError("no overlapping keys between measured and paper")
    label_w = max(len(str(k)) for k in keys)
    lines = [f"{'metric'.ljust(label_w)}  {'paper':>9}  {'measured':>9}  {'ratio':>6}"]
    for key in keys:
        p, m = float(paper[key]), float(measured[key])
        ratio = m / p if p else float("inf")
        lines.append(f"{str(key).ljust(label_w)}  {p:9.3f}  {m:9.3f}  {ratio:6.2f}")
    return "\n".join(lines)
